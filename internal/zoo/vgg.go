package zoo

import (
	"ceer/internal/graph"
	"ceer/internal/nn"
	"ceer/internal/tensor"
)

// vggConfigs maps a variant to its per-stage convolution counts
// (Simonyan & Zisserman's configurations A, D, and E). Every stage uses
// 3×3 SAME convolutions and ends with a 2×2/2 max pool; stage channel
// widths are 64, 128, 256, 512, 512.
var vggConfigs = map[string][5]int{
	"vgg-11": {1, 1, 2, 2, 2},
	"vgg-16": {2, 2, 3, 3, 3},
	"vgg-19": {2, 2, 4, 4, 4},
}

var vggWidths = [5]int64{64, 128, 256, 512, 512}

func buildVGG(name string, batch int64) (*graph.Graph, error) {
	cfg := vggConfigs[name]
	b := nn.NewBuilder(name, batch)
	x := b.Input(224, 224, 3)
	for stage, reps := range cfg {
		for i := 0; i < reps; i++ {
			x = convReLU(b, x, vggWidths[stage], 3, 1, tensor.Same)
		}
		x = b.MaxPool(x, 2, 2, tensor.Valid)
	}
	x = b.Flatten(x) // 7×7×512 = 25088
	x = denseReLU(b, x, 4096)
	x = denseReLU(b, x, 4096)
	x = b.Dense(x, ImageNetClasses)
	b.SoftmaxLoss(x)
	return b.Finish()
}

// VGG11 builds configuration A (8 conv + 3 FC layers, ~133M params).
// VGG-11 is in the paper's training set.
func VGG11(batch int64) (*graph.Graph, error) { return buildVGG("vgg-11", batch) }

// VGG16 builds configuration D (13 conv + 3 FC layers, ~138M params).
// VGG-16 is in the paper's training set.
func VGG16(batch int64) (*graph.Graph, error) { return buildVGG("vgg-16", batch) }

// VGG19 builds configuration E (16 conv + 3 FC layers, ~144M params).
// VGG-19 is one of the paper's four held-out test CNNs.
func VGG19(batch int64) (*graph.Graph, error) { return buildVGG("vgg-19", batch) }
