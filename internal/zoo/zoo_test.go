package zoo

import (
	"math"
	"testing"

	"ceer/internal/graph"
	"ceer/internal/ops"
)

// publishedParams lists the well-known parameter counts (in millions)
// of each architecture; the builders must land within tolerance. BN
// variants count only trainable scale/offset pairs.
var publishedParams = map[string]float64{
	"alexnet":             62.4,
	"vgg-11":              132.9,
	"vgg-16":              138.4,
	"vgg-19":              143.7,
	"resnet-50":           25.6,
	"resnet-101":          44.6,
	"resnet-152":          60.3,
	"resnet-200":          64.8,
	"inception-v1":        6.6,
	"inception-v3":        23.9,
	"inception-v4":        42.7,
	"inception-resnet-v2": 55.9,
}

func TestAllModelsBuild(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			g, err := Build(name, DefaultBatch)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			if g.Name != name {
				t.Errorf("graph name %q != model name %q", g.Name, name)
			}
			if g.Len() < 50 {
				t.Errorf("suspiciously small graph: %d nodes", g.Len())
			}
		})
	}
}

func TestParameterCounts(t *testing.T) {
	// Tolerance: ±12% of the published value. The builders reproduce the
	// canonical layer configurations; small deviations come from
	// BN-vs-bias bookkeeping differences between published tables.
	for name, wantM := range publishedParams {
		name, wantM := name, wantM
		t.Run(name, func(t *testing.T) {
			g, err := Build(name, DefaultBatch)
			if err != nil {
				t.Fatal(err)
			}
			gotM := float64(g.Params) / 1e6
			if math.Abs(gotM-wantM)/wantM > 0.12 {
				t.Errorf("%s params = %.2fM, published ~%.1fM", name, gotM, wantM)
			}
		})
	}
}

func TestParamOrdering(t *testing.T) {
	// Relative ordering of model sizes must hold (drives Fig. 7's x-axis).
	order := []string{"inception-v1", "inception-v3", "inception-v4",
		"resnet-101", "inception-resnet-v2", "alexnet", "vgg-19"}
	prev := int64(0)
	for _, name := range order {
		g := MustBuild(name, DefaultBatch)
		if g.Params <= prev {
			t.Errorf("%s params %d not greater than previous %d", name, g.Params, prev)
		}
		prev = g.Params
	}
}

func TestTrainTestSplit(t *testing.T) {
	train, test := TrainingSet(), TestSet()
	if len(train) != 8 || len(test) != 4 {
		t.Fatalf("split sizes %d/%d, want 8/4", len(train), len(test))
	}
	seen := make(map[string]bool)
	for _, n := range append(append([]string{}, train...), test...) {
		if seen[n] {
			t.Errorf("model %q appears twice in the split", n)
		}
		seen[n] = true
		if _, err := Build(n, 1); err != nil {
			t.Errorf("split references unbuildable model %q: %v", n, err)
		}
	}
	if len(seen) != len(Names()) {
		t.Errorf("split covers %d models, registry has %d", len(seen), len(Names()))
	}
	wantTest := map[string]bool{"inception-v3": true, "alexnet": true, "resnet-101": true, "vgg-19": true}
	for _, n := range test {
		if !wantTest[n] {
			t.Errorf("unexpected test-set member %q", n)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build("nope", 32); err == nil {
		t.Error("unknown model should error")
	}
	if _, err := Build("alexnet", 0); err == nil {
		t.Error("zero batch should error")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic for unknown model")
		}
	}()
	MustBuild("nope", 32)
}

func TestHeavyOpCoverageAcrossTrainingSet(t *testing.T) {
	// Union of op types across the 8 training CNNs must include every
	// heavy type of Figure 2 except none — this is the paper's insight
	// that new CNNs are composed of already-seen operations.
	seen := make(map[ops.Type]bool)
	for _, name := range TrainingSet() {
		g := MustBuild(name, 4)
		for tp := range g.CountByType() {
			seen[tp] = true
		}
	}
	for _, h := range ops.HeavyTypes() {
		if h == ops.DepthwiseConv2D {
			// Deliberately absent: the unseen-heavy-op demonstration op.
			continue
		}
		if !seen[h] {
			t.Errorf("heavy op %s never appears in the training set", h)
		}
	}
}

func TestTestSetOpsSeenInTraining(t *testing.T) {
	// Every heavy op type in the test CNNs must appear somewhere in the
	// training set, otherwise Ceer could not predict them (Section IV-D).
	trainSeen := make(map[ops.Type]bool)
	for _, name := range TrainingSet() {
		for tp := range MustBuild(name, 4).CountByType() {
			trainSeen[tp] = true
		}
	}
	for _, name := range TestSet() {
		g := MustBuild(name, 4)
		for tp := range g.CountByType() {
			if m := ops.MustLookup(tp); m.Class == ops.HeavyGPU && !trainSeen[tp] {
				t.Errorf("test CNN %s contains heavy op %s unseen in training", name, tp)
			}
		}
	}
}

func TestArchitectureShapes(t *testing.T) {
	// Spot-check known structural facts.
	cases := []struct {
		model    string
		opType   ops.Type
		minCount int
	}{
		{"alexnet", ops.MatMul, 3 * 3},            // 3 FC layers × (fwd+dW+dX), minus input-stop savings
		{"vgg-19", ops.Conv2D, 16},                // 16 conv layers
		{"resnet-101", ops.AddV2, 33},             // 33 bottleneck units
		{"inception-v3", ops.ConcatV2, 11},        // 11 mixed modules
		{"inception-v3", ops.AvgPool, 9},          // pooling-rich architecture
		{"inception-resnet-v2", ops.Mul, 20},      // residual scaling
		{"inception-v1", ops.ConcatV2, 9},         // 9 inception modules
		{"resnet-200", ops.FusedBatchNormV3, 180}, // deep BN stack
	}
	for _, c := range cases {
		g := MustBuild(c.model, 4)
		if got := g.CountByType()[c.opType]; got < c.minCount {
			t.Errorf("%s: %s count = %d, want >= %d", c.model, c.opType, got, c.minCount)
		}
	}
}

func TestPoolingHeavinessContrast(t *testing.T) {
	// The paper (Section V) attributes Inception-v3's and VGG-19's P3
	// cost-optimality to their many pooling ops versus AlexNet's and
	// ResNet-101's few. Verify the pooling-op count contrast.
	poolCount := func(name string) int {
		byType := MustBuild(name, 4).CountByType()
		return byType[ops.MaxPool] + byType[ops.AvgPool]
	}
	if poolCount("inception-v3") <= poolCount("alexnet") {
		t.Error("inception-v3 should have more pooling ops than alexnet")
	}
	if poolCount("inception-v3") <= poolCount("resnet-101") {
		t.Error("inception-v3 should have more pooling ops than resnet-101")
	}
}

func TestBatchScalesActivationsNotParams(t *testing.T) {
	g8 := MustBuild("resnet-50", 8)
	g16 := MustBuild("resnet-50", 16)
	if g8.Params != g16.Params {
		t.Error("params must not depend on batch size")
	}
	if g8.TotalFLOPs() >= g16.TotalFLOPs() {
		t.Error("FLOPs must grow with batch size")
	}
	if g8.Len() != g16.Len() {
		t.Error("node count must not depend on batch size")
	}
}

// publishedFwdGFLOPs lists well-known single-image forward-pass FLOP
// counts (multiply-accumulate counted as 2 FLOPs). The builders' conv
// and matmul arithmetic should land near these.
var publishedFwdGFLOPs = map[string]float64{
	// AlexNet here is the ungrouped (single-tower) variant, ~1.16 GMACs,
	// vs 0.72 GMACs for the original two-tower grouped convolutions.
	"alexnet":      2.3,
	"vgg-16":       31.0, // 15.5 GMACs
	"vgg-19":       39.0,
	"resnet-50":    8.2, // 4.1 GMACs
	"resnet-101":   15.6,
	"inception-v1": 3.0,
	"inception-v3": 11.4, // 5.7 GMACs
}

func TestForwardFLOPsMatchPublished(t *testing.T) {
	for name, wantG := range publishedFwdGFLOPs {
		name, wantG := name, wantG
		t.Run(name, func(t *testing.T) {
			g := MustBuild(name, 1)
			var fwd float64
			for _, n := range g.Nodes() {
				if n.Phase == graph.ForwardPhase {
					switch n.Op.Type {
					case ops.Conv2D, ops.MatMul, ops.DepthwiseConv2D:
						fwd += float64(n.Op.FLOPs())
					}
				}
			}
			gotG := fwd / 1e9
			// ±35%: published numbers vary by input resolution conventions
			// and whether auxiliary heads are counted.
			if gotG < wantG*0.65 || gotG > wantG*1.35 {
				t.Errorf("%s forward conv+fc FLOPs = %.1fG, published ~%.1fG", name, gotG, wantG)
			}
		})
	}
}

func TestBackwardRoughlyTwiceForward(t *testing.T) {
	// CNN training folklore the graphs must respect: the backward pass
	// costs roughly 2x the forward pass (two conv-sized gradient ops per
	// forward conv).
	for _, name := range []string{"vgg-16", "resnet-50", "inception-v3"} {
		g := MustBuild(name, 8)
		var fwd, bwd float64
		for _, n := range g.Nodes() {
			switch n.Phase {
			case graph.ForwardPhase:
				fwd += float64(n.Op.FLOPs())
			case graph.BackwardPhase:
				bwd += float64(n.Op.FLOPs())
			}
		}
		if ratio := bwd / fwd; ratio < 1.5 || ratio > 2.5 {
			t.Errorf("%s backward/forward FLOP ratio = %.2f, want ~2", name, ratio)
		}
	}
}
