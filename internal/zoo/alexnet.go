package zoo

import (
	"ceer/internal/graph"
	"ceer/internal/nn"
	"ceer/internal/tensor"
)

// AlexNet builds the classic 5-convolution, 3-fully-connected AlexNet
// (Krizhevsky et al., 2012) on 227×227 inputs, ~62M parameters. AlexNet
// is one of the paper's four held-out test CNNs; its enormous fully
// connected layers make communication overhead especially visible
// (the paper reports ~30% prediction error when that overhead is
// ignored).
func AlexNet(batch int64) (*graph.Graph, error) {
	b := nn.NewBuilder("alexnet", batch)
	x := b.Input(227, 227, 3)

	x = convReLU(b, x, 96, 11, 4, tensor.Valid) // 55×55×96
	x = b.MaxPool(x, 3, 2, tensor.Valid)        // 27×27×96
	x = convReLU(b, x, 256, 5, 1, tensor.Same)  // 27×27×256
	x = b.MaxPool(x, 3, 2, tensor.Valid)        // 13×13×256
	x = convReLU(b, x, 384, 3, 1, tensor.Same)
	x = convReLU(b, x, 384, 3, 1, tensor.Same)
	x = convReLU(b, x, 256, 3, 1, tensor.Same)
	x = b.MaxPool(x, 3, 2, tensor.Valid) // 6×6×256

	x = b.Flatten(x) // 9216
	x = denseReLU(b, x, 4096)
	x = denseReLU(b, x, 4096)
	x = b.Dense(x, ImageNetClasses)
	b.SoftmaxLoss(x)
	return b.Finish()
}
