// Package zoo builds the twelve CNN architectures the paper studies as
// op-level training graphs: AlexNet, VGG-11/16/19, Inception-v1/v3/v4,
// ResNet-v2-50/101/152/200, and Inception-ResNet-v2.
//
// The paper splits these into a training set of 8 CNNs (used to fit
// Ceer's models) and a test set of 4 previously unseen CNNs
// (Inception-v3, AlexNet, ResNet-101, VGG-19) used for validation and
// evaluation (Section III). The same split is exported here.
package zoo

import (
	"fmt"
	"sort"

	"ceer/internal/graph"
	"ceer/internal/nn"
	"ceer/internal/tensor"
)

// DefaultBatch is the paper's default per-GPU batch size.
const DefaultBatch = 32

// ImageNetClasses is the output dimensionality of every zoo model.
const ImageNetClasses = 1000

// BuilderFunc constructs one architecture's training graph for a given
// per-GPU batch size.
type BuilderFunc func(batch int64) (*graph.Graph, error)

var registry = map[string]BuilderFunc{
	"alexnet":             AlexNet,
	"vgg-11":              VGG11,
	"vgg-16":              VGG16,
	"vgg-19":              VGG19,
	"resnet-50":           ResNet50,
	"resnet-101":          ResNet101,
	"resnet-152":          ResNet152,
	"resnet-200":          ResNet200,
	"inception-v1":        InceptionV1,
	"inception-v3":        InceptionV3,
	"inception-v4":        InceptionV4,
	"inception-resnet-v2": InceptionResNetV2,
}

// Build constructs the named architecture at the given batch size.
func Build(name string, batch int64) (*graph.Graph, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("zoo: unknown model %q (have %v)", name, Names())
	}
	if batch <= 0 {
		return nil, fmt.Errorf("zoo: non-positive batch size %d", batch)
	}
	return f(batch)
}

// MustBuild is Build for known-good names; it panics on error.
func MustBuild(name string, batch int64) *graph.Graph {
	g, err := Build(name, batch)
	if err != nil {
		panic(err)
	}
	return g
}

// Names returns every registered model name, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TrainingSet returns the 8 CNNs used to fit Ceer's models.
func TrainingSet() []string {
	return []string{
		"vgg-11", "vgg-16",
		"inception-v1", "inception-v4", "inception-resnet-v2",
		"resnet-50", "resnet-152", "resnet-200",
	}
}

// TestSet returns the paper's 4 held-out CNNs: Inception-v3, AlexNet,
// ResNet-101, and VGG-19.
func TestSet() []string {
	return []string{"inception-v3", "alexnet", "resnet-101", "vgg-19"}
}

// convBN is the ubiquitous Conv → BatchNorm → ReLU unit of the
// batch-normalized architectures.
func convBN(b *nn.Builder, x nn.Tensor, outC, kh, kw, s int64, pad tensor.Padding) nn.Tensor {
	x = b.Conv(x, outC, kh, kw, s, pad)
	x = b.BatchNorm(x)
	return b.ReLU(x)
}

// convBNSq is convBN with a square kernel.
func convBNSq(b *nn.Builder, x nn.Tensor, outC, k, s int64, pad tensor.Padding) nn.Tensor {
	return convBN(b, x, outC, k, k, s, pad)
}

// convReLU is the bias-plus-activation unit of the pre-BN architectures
// (AlexNet, VGG).
func convReLU(b *nn.Builder, x nn.Tensor, outC, k, s int64, pad tensor.Padding) nn.Tensor {
	x = b.ConvSq(x, outC, k, s, pad)
	x = b.BiasAdd(x)
	return b.ReLU(x)
}

// denseReLU is a fully connected layer followed by ReLU.
func denseReLU(b *nn.Builder, x nn.Tensor, units int64) nn.Tensor {
	x = b.Dense(x, units)
	return b.ReLU(x)
}
