package zoo

import (
	"ceer/internal/graph"
	"ceer/internal/nn"
	"ceer/internal/tensor"
)

// InceptionResNetV2 builds Inception-ResNet-v2 (Szegedy et al., 2016),
// ~55M parameters; training set. The architecture combines inception
// branches with scaled residual connections, contributing both ConcatV2
// and the Mul/AddV2 residual ops to the training-set op mix.
func InceptionResNetV2(batch int64) (*graph.Graph, error) {
	b := nn.NewBuilder("inception-resnet-v2", batch)
	x := b.Input(299, 299, 3)
	x = inceptionV4Stem(b, x) // 35×35×384

	// 10 × Inception-ResNet-A (block35).
	for i := 0; i < 10; i++ {
		x = block35(b, x)
	}
	// Reduction-A with (k, l, m, n) = (256, 256, 384, 384).
	x = irReductionA(b, x) // 17×17×1152

	// 20 × Inception-ResNet-B (block17).
	for i := 0; i < 20; i++ {
		x = block17(b, x)
	}
	x = irReductionB(b, x) // 8×8×2144

	// 10 × Inception-ResNet-C (block8).
	for i := 0; i < 10; i++ {
		x = block8(b, x)
	}

	x = convBNSq(b, x, 1536, 1, 1, tensor.Same)
	x = b.AvgPool(x, 8, 1, tensor.Valid) // 1×1×1536
	x = b.Squeeze(x)
	x = b.Dense(x, ImageNetClasses)
	b.SoftmaxLoss(x)
	return b.Finish()
}

// residualJoin applies the Inception-ResNet residual pattern: project
// the mixed branches up to the trunk width with a linear 1×1 conv,
// scale, add to the shortcut, and apply ReLU.
func residualJoin(b *nn.Builder, shortcut, mixed nn.Tensor) nn.Tensor {
	up := b.ConvSq(mixed, shortcut.Spec().Shape.Dim(3), 1, 1, tensor.Same)
	up = b.ScaleResidual(up)
	return b.ReLU(b.Add(shortcut, up))
}

// block35 is Inception-ResNet-A at 35×35.
func block35(b *nn.Builder, x nn.Tensor) nn.Tensor {
	b1 := convBNSq(b, x, 32, 1, 1, tensor.Same)

	b2 := convBNSq(b, x, 32, 1, 1, tensor.Same)
	b2 = convBNSq(b, b2, 32, 3, 1, tensor.Same)

	b3 := convBNSq(b, x, 32, 1, 1, tensor.Same)
	b3 = convBNSq(b, b3, 48, 3, 1, tensor.Same)
	b3 = convBNSq(b, b3, 64, 3, 1, tensor.Same)

	mixed := b.Concat(b1, b2, b3) // 128
	return residualJoin(b, x, mixed)
}

// irReductionA reduces 35×35×384 to 17×17×1152.
func irReductionA(b *nn.Builder, x nn.Tensor) nn.Tensor {
	b1 := convBNSq(b, x, 384, 3, 2, tensor.Valid)

	b2 := convBNSq(b, x, 256, 1, 1, tensor.Same)
	b2 = convBNSq(b, b2, 256, 3, 1, tensor.Same)
	b2 = convBNSq(b, b2, 384, 3, 2, tensor.Valid)

	b3 := b.MaxPool(x, 3, 2, tensor.Valid)

	return b.Concat(b1, b2, b3) // 384+384+384 = 1152
}

// block17 is Inception-ResNet-B at 17×17.
func block17(b *nn.Builder, x nn.Tensor) nn.Tensor {
	b1 := convBNSq(b, x, 192, 1, 1, tensor.Same)

	b2 := convBNSq(b, x, 128, 1, 1, tensor.Same)
	b2 = convBN(b, b2, 160, 1, 7, 1, tensor.Same)
	b2 = convBN(b, b2, 192, 7, 1, 1, tensor.Same)

	mixed := b.Concat(b1, b2) // 384
	return residualJoin(b, x, mixed)
}

// irReductionB reduces 17×17×1152 to 8×8×2144.
func irReductionB(b *nn.Builder, x nn.Tensor) nn.Tensor {
	b1 := convBNSq(b, x, 256, 1, 1, tensor.Same)
	b1 = convBNSq(b, b1, 384, 3, 2, tensor.Valid)

	b2 := convBNSq(b, x, 256, 1, 1, tensor.Same)
	b2 = convBNSq(b, b2, 288, 3, 2, tensor.Valid)

	b3 := convBNSq(b, x, 256, 1, 1, tensor.Same)
	b3 = convBNSq(b, b3, 288, 3, 1, tensor.Same)
	b3 = convBNSq(b, b3, 320, 3, 2, tensor.Valid)

	b4 := b.MaxPool(x, 3, 2, tensor.Valid)

	return b.Concat(b1, b2, b3, b4) // 384+288+320+1152 = 2144
}

// block8 is Inception-ResNet-C at 8×8.
func block8(b *nn.Builder, x nn.Tensor) nn.Tensor {
	b1 := convBNSq(b, x, 192, 1, 1, tensor.Same)

	b2 := convBNSq(b, x, 192, 1, 1, tensor.Same)
	b2 = convBN(b, b2, 224, 1, 3, 1, tensor.Same)
	b2 = convBN(b, b2, 256, 3, 1, 1, tensor.Same)

	mixed := b.Concat(b1, b2) // 448
	return residualJoin(b, x, mixed)
}
