// Checkpoint-grade profile serialization. Unlike ExportJSON/ImportJSON
// (a human-facing analysis artifact that stores derived statistics),
// the state codec round-trips the exact internal accumulator state —
// count, mean, M2, extremes, retention cap, raw samples — so a profile
// restored from a campaign checkpoint is bit-identical to the one that
// was measured: resuming a preempted campaign reproduces the very
// bytes an uninterrupted run would have produced. JSON numbers use
// Go's shortest-round-trip float encoding, so no precision is lost.

package trace

import (
	"encoding/json"
	"fmt"
	"math"

	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/ops"
)

// AggState is the exact exported state of an Agg.
type AggState struct {
	N        int       `json:"n"`
	Mean     float64   `json:"mean"`
	M2       float64   `json:"m2"`
	Min      float64   `json:"min"`
	Max      float64   `json:"max"`
	Cap      int       `json:"cap"`
	Retained []float64 `json:"retained,omitempty"`
}

// State exports the accumulator's internal state. Empty accumulators
// encode their ±Inf extremes as 0 with N == 0 (JSON cannot carry Inf);
// RestoreAggState re-creates the infinities.
func (a *Agg) State() AggState {
	s := AggState{N: a.n, Mean: a.mean, M2: a.m2, Min: a.min, Max: a.max,
		Cap: a.cap, Retained: a.retained}
	if a.n == 0 {
		s.Min, s.Max = 0, 0
	}
	return s
}

// RestoreAggState inverts State exactly.
func RestoreAggState(s AggState) *Agg {
	a := &Agg{n: s.N, mean: s.Mean, m2: s.M2, min: s.Min, max: s.Max,
		cap: s.Cap, retained: append([]float64(nil), s.Retained...)}
	if s.N == 0 {
		a.min, a.max = math.Inf(1), math.Inf(-1)
	}
	return a
}

// seriesState is the exact state of one Series.
type seriesState struct {
	Node        int       `json:"node"`
	Op          string    `json:"op"`
	Phase       string    `json:"phase"`
	Features    []float64 `json:"features"`
	InputBytes  int64     `json:"input_bytes"`
	OutputBytes int64     `json:"output_bytes"`
	Agg         AggState  `json:"agg"`
}

// profileState is the exact state of a Profile. Devices are keyed by
// their stable registry ID (not family), matching the persist v2
// discipline.
type profileState struct {
	CNN        string        `json:"cnn"`
	GPU        string        `json:"gpu"`
	Iterations int           `json:"iterations"`
	Params     int64         `json:"params"`
	BatchSize  int64         `json:"batch_size"`
	IterTotal  AggState      `json:"iter_total"`
	Series     []seriesState `json:"series"`
}

// MarshalState encodes the profile's exact state as one compact JSON
// value (single line, checkpoint-record friendly).
func (p *Profile) MarshalState() ([]byte, error) {
	out := profileState{
		CNN:        p.CNN,
		GPU:        string(p.GPU),
		Iterations: p.Iterations,
		Params:     p.Params,
		BatchSize:  p.BatchSize,
		IterTotal:  p.IterTotal.State(),
	}
	for _, s := range p.Series {
		out.Series = append(out.Series, seriesState{
			Node:        int(s.Node),
			Op:          string(s.OpType),
			Phase:       s.Phase.String(),
			Features:    s.Features,
			InputBytes:  s.InputBytes,
			OutputBytes: s.OutputBytes,
			Agg:         s.Agg.State(),
		})
	}
	return json.Marshal(out)
}

// UnmarshalState inverts MarshalState. The profile's device must be
// registered in the loading process.
func UnmarshalState(data []byte) (*Profile, error) {
	var in profileState
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("trace: decoding profile state: %w", err)
	}
	m := gpu.ID(in.GPU)
	if _, ok := gpu.Lookup(m); !ok {
		return nil, fmt.Errorf("trace: profile state references unregistered device %q", in.GPU)
	}
	if in.Iterations <= 0 {
		return nil, fmt.Errorf("trace: profile state has %d iterations", in.Iterations)
	}
	p := &Profile{
		CNN:        in.CNN,
		GPU:        m,
		Iterations: in.Iterations,
		Params:     in.Params,
		BatchSize:  in.BatchSize,
		IterTotal:  RestoreAggState(in.IterTotal),
	}
	for _, sj := range in.Series {
		tp := ops.Type(sj.Op)
		meta, ok := ops.Lookup(tp)
		if !ok {
			return nil, fmt.Errorf("trace: profile state has unknown op type %q", sj.Op)
		}
		p.Series = append(p.Series, &Series{
			CNN:         in.CNN,
			GPU:         m,
			Node:        graph.NodeID(sj.Node),
			OpType:      tp,
			Class:       meta.Class,
			Phase:       parsePhase(sj.Phase),
			Features:    sj.Features,
			InputBytes:  sj.InputBytes,
			OutputBytes: sj.OutputBytes,
			Agg:         RestoreAggState(sj.Agg),
		})
	}
	return p, nil
}
