package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/ops"
)

// seriesJSON is the exported form of one per-node measurement series.
type seriesJSON struct {
	Node        int       `json:"node"`
	Op          string    `json:"op"`
	Class       string    `json:"class"`
	Phase       string    `json:"phase"`
	Features    []float64 `json:"features"`
	InputBytes  int64     `json:"input_bytes"`
	OutputBytes int64     `json:"output_bytes"`
	N           int       `json:"n"`
	MeanSeconds float64   `json:"mean_s"`
	StdSeconds  float64   `json:"std_s"`
	MinSeconds  float64   `json:"min_s"`
	MaxSeconds  float64   `json:"max_s"`
	// Samples carries the retained raw measurements so an imported
	// profile supports the median estimators.
	Samples []float64 `json:"samples,omitempty"`
}

// profileJSON is the exported form of a Profile.
type profileJSON struct {
	CNN          string       `json:"cnn"`
	GPU          string       `json:"gpu"`
	Family       string       `json:"family"`
	Iterations   int          `json:"iterations"`
	Params       int64        `json:"params"`
	BatchSize    int64        `json:"batch_size"`
	MeanIterSecs float64      `json:"mean_iteration_s"`
	Series       []seriesJSON `json:"series"`
}

// ExportJSON writes the profile in a stable machine-readable form, for
// downstream analysis outside this repository (the equivalent of
// exporting a TensorFlow timeline).
func (p *Profile) ExportJSON(w io.Writer) error {
	out := profileJSON{
		CNN:          p.CNN,
		GPU:          p.GPU.String(),
		Family:       p.GPU.Family(),
		Iterations:   p.Iterations,
		Params:       p.Params,
		BatchSize:    p.BatchSize,
		MeanIterSecs: p.MeanIterSeconds(),
	}
	for _, s := range p.Series {
		out.Series = append(out.Series, seriesJSON{
			Node:        int(s.Node),
			Op:          string(s.OpType),
			Class:       s.Class.String(),
			Phase:       s.Phase.String(),
			Features:    s.Features,
			InputBytes:  s.InputBytes,
			OutputBytes: s.OutputBytes,
			N:           s.Agg.N(),
			MeanSeconds: s.Agg.Mean(),
			StdSeconds:  s.Agg.Std(),
			MinSeconds:  s.Agg.Min(),
			MaxSeconds:  s.Agg.Max(),
			Samples:     s.Agg.Retained(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ImportJSON restores a Profile previously written by ExportJSON,
// enabling offline workflows: profile once, analyze or retrain later
// without re-running the measurement campaign.
func ImportJSON(r io.Reader) (*Profile, error) {
	var in profileJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("trace: decoding profile: %w", err)
	}
	m, ok := gpu.ByFamily(in.Family)
	if !ok {
		return nil, fmt.Errorf("trace: unknown GPU family %q", in.Family)
	}
	if in.Iterations <= 0 {
		return nil, fmt.Errorf("trace: profile has %d iterations", in.Iterations)
	}
	p := &Profile{
		CNN:        in.CNN,
		GPU:        m,
		Iterations: in.Iterations,
		Params:     in.Params,
		BatchSize:  in.BatchSize,
		IterTotal:  RestoreAgg(in.Iterations, in.MeanIterSecs, 0, in.MeanIterSecs, in.MeanIterSecs, nil),
	}
	for _, sj := range in.Series {
		tp := ops.Type(sj.Op)
		if !ops.Known(tp) {
			return nil, fmt.Errorf("trace: unknown op type %q", sj.Op)
		}
		if sj.N != in.Iterations {
			return nil, fmt.Errorf("trace: series %q has %d samples, profile has %d iterations", sj.Op, sj.N, in.Iterations)
		}
		p.Series = append(p.Series, &Series{
			CNN:         in.CNN,
			GPU:         m,
			Node:        graph.NodeID(sj.Node),
			OpType:      tp,
			Class:       ops.MustLookup(tp).Class,
			Phase:       parsePhase(sj.Phase),
			Features:    sj.Features,
			InputBytes:  sj.InputBytes,
			OutputBytes: sj.OutputBytes,
			Agg:         RestoreAgg(sj.N, sj.MeanSeconds, sj.StdSeconds, sj.MinSeconds, sj.MaxSeconds, sj.Samples),
		})
	}
	return p, nil
}

func parsePhase(s string) graph.Phase {
	switch s {
	case "input":
		return graph.InputPhase
	case "backward":
		return graph.BackwardPhase
	case "update":
		return graph.UpdatePhase
	default:
		return graph.ForwardPhase
	}
}
