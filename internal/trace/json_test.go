package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"ceer/internal/gpu"
)

func TestProfileExportJSON(t *testing.T) {
	p := mkProfile("mynet", gpu.T4)
	var buf bytes.Buffer
	if err := p.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back struct {
		CNN        string `json:"cnn"`
		Family     string `json:"family"`
		Iterations int    `json:"iterations"`
		Series     []struct {
			Op    string  `json:"op"`
			Class string  `json:"class"`
			N     int     `json:"n"`
			Mean  float64 `json:"mean_s"`
		} `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.CNN != "mynet" || back.Family != "G4" || back.Iterations != 4 {
		t.Errorf("header fields wrong: %+v", back)
	}
	if len(back.Series) != len(p.Series) {
		t.Fatalf("series count %d, want %d", len(back.Series), len(p.Series))
	}
	if back.Series[0].Op != "Conv2D" || back.Series[0].Class != "heavy-gpu" {
		t.Errorf("first series = %+v", back.Series[0])
	}
	if back.Series[0].N != 4 || !eqExact(back.Series[0].Mean, 0.010) {
		t.Errorf("series stats wrong: %+v", back.Series[0])
	}
}

func TestProfileJSONRoundtrip(t *testing.T) {
	orig := mkProfile("roundtrip-net", gpu.K80)
	var buf bytes.Buffer
	if err := orig.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ImportJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.CNN != orig.CNN || back.GPU != orig.GPU || back.Iterations != orig.Iterations {
		t.Errorf("metadata changed: %+v", back)
	}
	if len(back.Series) != len(orig.Series) {
		t.Fatalf("series count changed")
	}
	for i, s := range back.Series {
		o := orig.Series[i]
		if s.OpType != o.OpType || s.Class != o.Class {
			t.Errorf("series %d type/class changed", i)
		}
		if !eqExact(s.Agg.Mean(), o.Agg.Mean()) || s.Agg.N() != o.Agg.N() {
			t.Errorf("series %d stats changed: %v vs %v", i, s.Agg.Mean(), o.Agg.Mean())
		}
		if len(s.Agg.Retained()) != len(o.Agg.Retained()) {
			t.Errorf("series %d retained samples lost", i)
		}
	}
	// Aggregations still work on the imported profile.
	if back.ClassShare()[orig.Series[0].Class] <= 0 {
		t.Error("imported profile aggregation broken")
	}
}

func TestImportJSONRejects(t *testing.T) {
	cases := map[string]string{
		"not json":   "{nope",
		"bad family": `{"cnn":"x","family":"ZZ","iterations":3}`,
		"bad iters":  `{"cnn":"x","family":"P3","iterations":0}`,
		"bad op": `{"cnn":"x","family":"P3","iterations":2,
			"series":[{"node":0,"op":"Bogus","n":2}]}`,
		"n mismatch": `{"cnn":"x","family":"P3","iterations":2,
			"series":[{"node":0,"op":"Relu","n":5}]}`,
	}
	for name, payload := range cases {
		if _, err := ImportJSON(bytes.NewReader([]byte(payload))); err == nil {
			t.Errorf("%s: ImportJSON should fail", name)
		}
	}
}

func TestRestoreAggMatchesOriginal(t *testing.T) {
	a := NewAgg(4)
	for _, v := range []float64{1, 2, 3, 4, 5, 6} {
		a.Add(v)
	}
	b := RestoreAgg(a.N(), a.Mean(), a.Std(), a.Min(), a.Max(), a.Retained())
	if b.N() != a.N() || !eqExact(b.Mean(), a.Mean()) || !eqExact(b.Min(), a.Min()) || !eqExact(b.Max(), a.Max()) {
		t.Error("restored stats differ")
	}
	if diff := b.Std() - a.Std(); diff > 1e-12 || diff < -1e-12 {
		t.Errorf("restored std differs: %v vs %v", b.Std(), a.Std())
	}
	if len(b.Retained()) != 4 {
		t.Errorf("retained count = %d", len(b.Retained()))
	}
}
