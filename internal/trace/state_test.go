package trace

import (
	"math"
	"reflect"
	"testing"

	"ceer/internal/gpu"
)

func TestAggStateRoundTrip(t *testing.T) {
	a := NewAgg(4)
	for _, v := range []float64{0.002, 0.0035, 0.0031, 0.0029, 0.004, 0.0025} {
		a.Add(v)
	}
	b := RestoreAggState(a.State())
	if !reflect.DeepEqual(a, b) {
		t.Errorf("restored Agg differs:\n%+v\nvs\n%+v", a, b)
	}
	if !eqExact(a.Mean(), b.Mean()) || !eqExact(a.Std(), b.Std()) ||
		!eqExact(a.Min(), b.Min()) || !eqExact(a.Max(), b.Max()) {
		t.Error("derived statistics drifted across restore")
	}
	// Restored accumulators must keep accumulating identically.
	a.Add(0.0042)
	b.Add(0.0042)
	if !eqExact(a.Mean(), b.Mean()) || !eqExact(a.Std(), b.Std()) {
		t.Error("post-restore accumulation diverges")
	}
}

func TestAggStateEmpty(t *testing.T) {
	a := NewAgg(2)
	s := a.State()
	// JSON cannot carry ±Inf; the empty accumulator's extremes encode
	// as 0 and are re-created on restore.
	if s.Min != 0 || s.Max != 0 || s.N != 0 {
		t.Errorf("empty state = %+v, want zeroed extremes", s)
	}
	b := RestoreAggState(s)
	if !math.IsInf(b.Min(), 1) || !math.IsInf(b.Max(), -1) {
		t.Errorf("restored empty Agg extremes = (%v, %v), want (+Inf, -Inf)", b.Min(), b.Max())
	}
	a.Add(0.5)
	b.Add(0.5)
	if !eqExact(a.Min(), b.Min()) || !eqExact(a.Max(), b.Max()) {
		t.Error("empty-restored Agg diverges on first sample")
	}
}

func TestProfileStateRoundTrip(t *testing.T) {
	p := mkProfile("vgg-11", gpu.V100)
	data, err := p.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	q, err := UnmarshalState(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Errorf("restored profile differs:\n%+v\nvs\n%+v", p, q)
	}
	// The codec must be a fixed point: re-marshaling the restored
	// profile reproduces the exact bytes (the checkpoint's resume
	// guarantee).
	again, err := q.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Error("marshal-restore-marshal is not byte-stable")
	}
}

func TestUnmarshalStateRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":       `{nope`,
		"unknown device": `{"cnn":"x","gpu":"no-such-device","iterations":5,"iter_total":{"n":0,"mean":0,"m2":0,"min":0,"max":0,"cap":0}}`,
		"zero iters":     `{"cnn":"x","gpu":"v100","iterations":0,"iter_total":{"n":0,"mean":0,"m2":0,"min":0,"max":0,"cap":0}}`,
		"unknown op":     `{"cnn":"x","gpu":"v100","iterations":5,"iter_total":{"n":0,"mean":0,"m2":0,"min":0,"max":0,"cap":0},"series":[{"node":0,"op":"NoSuchOp","phase":"forward","agg":{"n":0,"mean":0,"m2":0,"min":0,"max":0,"cap":0}}]}`,
	}
	for name, payload := range cases {
		if _, err := UnmarshalState([]byte(payload)); err == nil {
			t.Errorf("%s: UnmarshalState should fail", name)
		}
	}
}

func TestMissingCellBookkeeping(t *testing.T) {
	b := &Bundle{}
	// Insert out of order; AddMissing keeps the list sorted.
	b.AddMissing(MissingCell{CNN: "vgg-11", GPU: gpu.T4, Reason: "boom"})
	b.AddMissing(MissingCell{CNN: "alexnet", GPU: gpu.M60, K: 2, Reason: "comm fault"})
	b.AddMissing(MissingCell{CNN: "alexnet", GPU: gpu.M60, Reason: "profile fault"})
	if len(b.Missing) != 3 {
		t.Fatalf("missing count = %d", len(b.Missing))
	}
	for i := 1; i < len(b.Missing); i++ {
		a, c := b.Missing[i-1], b.Missing[i]
		if a.CNN > c.CNN {
			t.Errorf("missing list unsorted at %d: %v then %v", i, a, c)
		}
	}
	m60 := b.MissingForGPU(gpu.M60)
	if len(m60) != 2 {
		t.Errorf("MissingForGPU(m60) = %v, want 2 cells", m60)
	}
	if got := b.MissingForGPU(gpu.V100); len(got) != 0 {
		t.Errorf("MissingForGPU(v100) = %v, want none", got)
	}
	// String forms: with and without the k qualifier.
	if s := (MissingCell{CNN: "x", GPU: gpu.T4, Reason: "r"}).String(); s != "x/T4: r" {
		t.Errorf("String() = %q", s)
	}
	if s := (MissingCell{CNN: "x", GPU: gpu.T4, K: 4, Reason: "r"}).String(); s != "x/T4/k=4: r" {
		t.Errorf("String() = %q", s)
	}
}
