package trace

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/ops"
	"ceer/internal/trace/corrupt"
)

// obsProfile builds a small profile with two series for stream tests.
func obsProfile(cnn string, m gpu.ID) *Profile {
	mk := func(node int, t ops.Type, feats []float64, samples ...float64) *Series {
		agg := NewAgg(len(samples))
		for _, s := range samples {
			agg.Add(s)
		}
		meta, _ := ops.Lookup(t)
		return &Series{CNN: cnn, GPU: m, Node: graph.NodeID(node), OpType: t,
			Class: meta.Class, Features: feats, Agg: agg}
	}
	total := NewAgg(0)
	total.Add(0.5)
	total.Add(0.6)
	return &Profile{
		CNN: cnn, GPU: m, Iterations: 2, Params: 1000, BatchSize: 32,
		Series: []*Series{
			mk(0, "Conv2D", []float64{1, 2, 3}, 0.30, 0.40),
			mk(1, "MatMul", []float64{4, 5}, 0.10, 0.20),
		},
		IterTotal: total,
	}
}

// TestBundleObservations pins the stream contract: profiles in bundle
// order, series in node order, each carrying the series mean.
func TestBundleObservations(t *testing.T) {
	b := &Bundle{}
	b.Add(obsProfile("cnn-a", gpu.V100))
	b.Add(obsProfile("cnn-b", gpu.K80))
	var got []Obs
	if err := b.Observations(func(o Obs) error { got = append(got, o); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("streamed %d observations, want 4", len(got))
	}
	want := []struct {
		cnn string
		m   gpu.ID
		op  ops.Type
		sec float64
	}{
		{"cnn-a", gpu.V100, "Conv2D", 0.35},
		{"cnn-a", gpu.V100, "MatMul", 0.15},
		{"cnn-b", gpu.K80, "Conv2D", 0.35},
		{"cnn-b", gpu.K80, "MatMul", 0.15},
	}
	for i, w := range want {
		o := got[i]
		if o.CNN != w.cnn || o.GPU != w.m || o.Op != w.op || !approxObs(o.Seconds, w.sec) {
			t.Errorf("obs[%d] = %+v, want %+v", i, o, w)
		}
	}
	// Emission stops at the first emit error.
	calls := 0
	err := b.Observations(func(Obs) error { calls++; return io.ErrClosedPipe })
	if err != io.ErrClosedPipe || calls != 1 {
		t.Errorf("error propagation: err=%v calls=%d", err, calls)
	}
}

func approxObs(a, b float64) bool { d := a - b; return d < 1e-12 && d > -1e-12 }

// TestObsLogRoundTrip pins the JSONL codec: write → read reproduces
// the stream, and the bytes are deterministic.
func TestObsLogRoundTrip(t *testing.T) {
	b := &Bundle{}
	b.Add(obsProfile("cnn-a", gpu.V100))
	var buf1, buf2 bytes.Buffer
	if err := WriteObsLog(&buf1, b); err != nil {
		t.Fatal(err)
	}
	if err := WriteObsLog(&buf2, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Error("observation log is not byte-deterministic")
	}
	got, err := ReadObsLog(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var want []Obs
	if err := b.Observations(func(o Obs) error { want = append(want, o); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d observations, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].CNN != want[i].CNN || got[i].GPU != want[i].GPU ||
			got[i].Node != want[i].Node || got[i].Op != want[i].Op ||
			math.Float64bits(got[i].Seconds) != math.Float64bits(want[i].Seconds) {
			t.Errorf("obs[%d] round-trip mismatch: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestObsReaderErrors pins line-numbered failures for malformed logs.
// Decode failures are fatal only when another record follows (a bad
// *final* line is a torn tail, tested separately); validation failures
// are fatal anywhere, including the final line.
func TestObsReaderErrors(t *testing.T) {
	good := `{"cnn":"a","gpu":"v100","node":0,"op":"Conv2D","features":[1],"seconds":0.5}`
	cases := []struct {
		name string
		log  string
		want string
	}{
		{"bad json mid-log", good + "\n{broken\n" + good + "\n", "line 2"},
		{"unknown field mid-log", `{"cnn":"a","gpu":"v100","node":0,"op":"Conv2D","features":[1],"seconds":1,"extra":1}` + "\n" + good + "\n", "line 1"},
		{"unregistered device", `{"cnn":"a","gpu":"nope","node":0,"op":"Conv2D","features":[1],"seconds":1}`, "unregistered device"},
		{"unknown op", `{"cnn":"a","gpu":"v100","node":0,"op":"Nope","features":[1],"seconds":1}`, "unknown op type"},
		{"no features", `{"cnn":"a","gpu":"v100","node":0,"op":"Conv2D","features":[],"seconds":1}`, "no features"},
		{"negative seconds", `{"cnn":"a","gpu":"v100","node":0,"op":"Conv2D","features":[1],"seconds":-1}`, "invalid seconds"},
	}
	for _, tc := range cases {
		_, err := ReadObsLog(strings.NewReader(tc.log))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	// Blank lines are tolerated.
	got, err := ReadObsLog(strings.NewReader("\n" + good + "\n\n"))
	if err != nil || len(got) != 1 {
		t.Errorf("blank-line log: got %d obs, err %v", len(got), err)
	}
}

// readAllTorn drains a reader, returning the records, the terminal
// error (nil for clean EOF), and the torn-line marker.
func readAllTorn(r io.Reader) ([]Obs, error, int) {
	or := NewObsReader(r)
	var out []Obs
	for {
		o, err := or.Read()
		if err == io.EOF {
			return out, nil, or.Torn()
		}
		if err != nil {
			return out, err, or.Torn()
		}
		out = append(out, o)
	}
}

// TestObsReaderCorruption drives the shared journal-corruption table
// (internal/trace/corrupt) through the observation reader: torn final
// lines recover the intact prefix, damage anywhere else fails — the
// same contract the campaign checkpoint codec pins against the same
// table.
func TestObsReaderCorruption(t *testing.T) {
	b := &Bundle{}
	b.Add(obsProfile("cnn-a", gpu.V100))
	b.Add(obsProfile("cnn-b", gpu.K80))
	var buf bytes.Buffer
	if err := WriteObsLog(&buf, b); err != nil {
		t.Fatal(err)
	}
	intact := buf.Bytes()
	full, err, torn := readAllTorn(bytes.NewReader(intact))
	if err != nil || torn != 0 {
		t.Fatalf("intact log: err %v, torn %d", err, torn)
	}
	for _, tc := range corrupt.Cases() {
		mutated := tc.Mutate(append([]byte{}, intact...))
		got, err, torn := readAllTorn(bytes.NewReader(mutated))
		switch tc.Want {
		case corrupt.WantAll:
			if err != nil || len(got) != len(full) || torn != 0 {
				t.Errorf("%s: got %d obs, err %v, torn %d; want all %d clean",
					tc.Name, len(got), err, torn, len(full))
			}
		case corrupt.WantTorn:
			wantLen := len(full)
			if bytes.HasPrefix(mutated, bytes.TrimRight(intact, "\n")) {
				// The fragment was appended after the intact log; no
				// complete record was lost.
			} else {
				wantLen--
			}
			if err != nil || len(got) != wantLen || torn == 0 {
				t.Errorf("%s: got %d obs, err %v, torn %d; want %d obs with torn tail",
					tc.Name, len(got), err, torn, wantLen)
			}
		case corrupt.WantErr:
			if err == nil {
				t.Errorf("%s: corruption must be an error (got %d obs)", tc.Name, len(got))
			}
		}
	}
}
