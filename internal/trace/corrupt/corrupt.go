// Package corrupt is the shared corruption model for the repository's
// append-only JSONL journals (the campaign checkpoint and the
// observation log). Both codecs promise the same recovery contract: a
// torn final line — the footprint of a process killed mid-append — is
// tolerated, dropping only that record; damage anywhere else is an
// error. The table here drives both readers' corruption tests, so the
// contract cannot drift between them.
package corrupt

import "bytes"

// Outcome classifies what a tolerant journal reader must do with a
// mutated log.
type Outcome int

const (
	// WantAll: the mutation is harmless; every record still reads.
	WantAll Outcome = iota
	// WantTorn: only the final record is damaged (torn tail); the
	// reader must recover the intact prefix and stop cleanly.
	WantTorn
	// WantErr: the damage is not a torn tail; the reader must fail.
	WantErr
)

// Case is one deterministic journal mutation.
type Case struct {
	Name string
	// Mutate transforms an intact JSONL journal (complete lines, each
	// newline-terminated, at least three records).
	Mutate func(data []byte) []byte
	// Want is the required reader behaviour on the mutated journal.
	Want Outcome
}

// lastLineStart returns the offset of the final non-empty line.
func lastLineStart(data []byte) int {
	trimmed := bytes.TrimRight(data, "\n")
	if i := bytes.LastIndexByte(trimmed, '\n'); i >= 0 {
		return i + 1
	}
	return 0
}

// Cases returns the shared corruption table. Mutations that model a
// crash mid-append cut the trailing newline too — a torn line is by
// definition unterminated.
func Cases() []Case {
	return []Case{
		{
			Name:   "intact",
			Mutate: func(data []byte) []byte { return data },
			Want:   WantAll,
		},
		{
			Name: "blank-interior-lines",
			Mutate: func(data []byte) []byte {
				i := lastLineStart(data)
				out := append([]byte{}, data[:i]...)
				out = append(out, '\n', '\n')
				return append(out, data[i:]...)
			},
			Want: WantAll,
		},
		{
			Name: "torn-final-line-mid-record",
			Mutate: func(data []byte) []byte {
				trimmed := bytes.TrimRight(data, "\n")
				cut := lastLineStart(data) + (len(trimmed)-lastLineStart(data))/2
				return append([]byte{}, data[:cut]...)
			},
			Want: WantTorn,
		},
		{
			Name: "torn-final-line-one-byte",
			Mutate: func(data []byte) []byte {
				i := lastLineStart(data)
				return append(append([]byte{}, data[:i]...), '{')
			},
			Want: WantTorn,
		},
		{
			Name: "torn-extra-fragment-after-intact-log",
			Mutate: func(data []byte) []byte {
				return append(append([]byte{}, data...), []byte(`{"half":`)...)
			},
			Want: WantTorn,
		},
		{
			Name: "garbage-mid-file",
			Mutate: func(data []byte) []byte {
				lines := bytes.SplitN(data, []byte("\n"), 3)
				return bytes.Join([][]byte{lines[0], []byte(`{broken`), lines[2]}, []byte("\n"))
			},
			Want: WantErr,
		},
		{
			Name: "truncated-mid-file-line",
			Mutate: func(data []byte) []byte {
				lines := bytes.SplitN(data, []byte("\n"), 3)
				half := lines[1][:len(lines[1])/2]
				return bytes.Join([][]byte{lines[0], half, lines[2]}, []byte("\n"))
			},
			Want: WantErr,
		},
	}
}
