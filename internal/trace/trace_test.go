package trace

import (
	"math"
	"testing"
	"testing/quick"

	"ceer/internal/gpu"
	"ceer/internal/ops"
	"ceer/internal/stats"
)

func TestAggBasics(t *testing.T) {
	a := NewAgg(2)
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v", a.Mean())
	}
	if math.Abs(a.Std()-2) > 1e-12 {
		t.Errorf("Std = %v", a.Std())
	}
	if math.Abs(a.NormalizedStd()-0.4) > 1e-12 {
		t.Errorf("NormalizedStd = %v", a.NormalizedStd())
	}
	if !eqExact(a.Min(), 2) || !eqExact(a.Max(), 9) {
		t.Errorf("Min/Max = %v/%v", a.Min(), a.Max())
	}
	if len(a.Retained()) != 2 {
		t.Errorf("Retained = %d samples, cap 2", len(a.Retained()))
	}
}

func TestAggEmpty(t *testing.T) {
	a := NewAgg(4)
	if a.Mean() != 0 || a.Std() != 0 || a.NormalizedStd() != 0 || a.N() != 0 {
		t.Error("empty agg should be all zeros")
	}
}

func TestAggSinglePoint(t *testing.T) {
	a := NewAgg(4)
	a.Add(3)
	if a.Std() != 0 {
		t.Error("single point std should be 0")
	}
}

// Property: Agg matches the batch statistics package on random samples.
func TestAggMatchesBatchProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e15 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := NewAgg(0)
		for _, x := range xs {
			a.Add(x)
		}
		scale := math.Max(1, math.Abs(stats.Mean(xs)))
		if math.Abs(a.Mean()-stats.Mean(xs)) > 1e-9*scale {
			return false
		}
		sd := stats.StdDev(xs)
		return math.Abs(a.Std()-sd) <= 1e-6*math.Max(1, sd)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mkSeries(cnn string, m gpu.ID, tp ops.Type, class ops.Class, mean float64, n int) *Series {
	a := NewAgg(8)
	for i := 0; i < n; i++ {
		a.Add(mean)
	}
	return &Series{CNN: cnn, GPU: m, OpType: tp, Class: class, Agg: a}
}

func mkProfile(cnn string, m gpu.ID) *Profile {
	p := &Profile{CNN: cnn, GPU: m, Iterations: 4, IterTotal: NewAgg(8)}
	p.Series = []*Series{
		mkSeries(cnn, m, ops.Conv2D, ops.HeavyGPU, 0.010, 4),
		mkSeries(cnn, m, ops.Relu, ops.HeavyGPU, 0.002, 4),
		mkSeries(cnn, m, ops.Cast, ops.LightGPU, 0.0001, 4),
		mkSeries(cnn, m, ops.OneHot, ops.CPU, 0.0002, 4),
	}
	for i := 0; i < 4; i++ {
		p.IterTotal.Add(0.0123)
	}
	return p
}

func TestProfileByTypeAndClassShare(t *testing.T) {
	p := mkProfile("net", gpu.V100)
	byType := p.ByType()
	if len(byType[ops.Conv2D]) != 1 || len(byType[ops.Relu]) != 1 {
		t.Error("ByType grouping wrong")
	}
	share := p.ClassShare()
	total := share[ops.HeavyGPU] + share[ops.LightGPU] + share[ops.CPU]
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("class shares sum to %v", total)
	}
	if share[ops.HeavyGPU] < 0.9 {
		t.Errorf("heavy share = %v, want > 0.9 in this synthetic profile", share[ops.HeavyGPU])
	}
	if !eqExact(p.MeanIterSeconds(), 0.0123) {
		t.Errorf("MeanIterSeconds = %v", p.MeanIterSeconds())
	}
}

func TestProfileValidate(t *testing.T) {
	p := mkProfile("net", gpu.V100)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Series[0].Agg.Add(1) // now sample count mismatches
	if err := p.Validate(); err == nil {
		t.Error("mismatched sample count should fail validation")
	}
	bad := &Profile{CNN: "x", Iterations: 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero iterations should fail validation")
	}
}

func TestBundleFilters(t *testing.T) {
	b := &Bundle{}
	b.Add(mkProfile("a", gpu.V100))
	b.Add(mkProfile("a", gpu.K80))
	b.Add(mkProfile("b", gpu.V100))

	if got := len(b.ForGPU(gpu.V100)); got != 2 {
		t.Errorf("ForGPU = %d profiles", got)
	}
	if got := len(b.ForCNN("a")); got != 2 {
		t.Errorf("ForCNN = %d profiles", got)
	}
	if _, ok := b.Find("a", gpu.K80); !ok {
		t.Error("Find missed existing profile")
	}
	if _, ok := b.Find("c", gpu.K80); ok {
		t.Error("Find hit nonexistent profile")
	}
	cnns := b.CNNs()
	if len(cnns) != 2 || cnns[0] != "a" || cnns[1] != "b" {
		t.Errorf("CNNs = %v", cnns)
	}
}

func TestMeanTimeByType(t *testing.T) {
	b := &Bundle{}
	b.Add(mkProfile("a", gpu.V100))
	b.Add(mkProfile("b", gpu.V100))
	means := b.MeanTimeByType(gpu.V100)
	if math.Abs(means[ops.Conv2D]-0.010) > 1e-12 {
		t.Errorf("Conv2D mean = %v", means[ops.Conv2D])
	}
	if math.Abs(means[ops.Cast]-0.0001) > 1e-12 {
		t.Errorf("Cast mean = %v", means[ops.Cast])
	}
	if len(b.MeanTimeByType(gpu.T4)) != 0 {
		t.Error("no T4 profiles, map should be empty")
	}
}

// eqExact reports a == b. Exact float equality is the contract under
// test here: serialization round-trips must preserve
// aggregates bit-for-bit.
func eqExact(a, b float64) bool { return a == b }
