// The observation stream: the incremental form of the training corpus.
// Where Bundle is the materialized campaign artifact, an Obs is one
// (device, op) timing fact — the unit the streaming fit path consumes.
// The batch campaign and live calibration replay share this one shape:
// Bundle.Observations flattens a campaign into the stream in a
// deterministic order (profiles in bundle order, series in node
// order, the exact row order the trainer has always used), and the
// JSONL codec (ObsWriter/ObsReader) carries the same records through
// files so a serving process can replay an observation log against a
// saved predictor.

package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/ops"
)

// Obs is one observed op timing: the regression features of a single
// graph node and the seconds it took on a device. Campaign-derived
// observations carry the per-iteration mean; live observations carry a
// single measurement.
type Obs struct {
	// CNN names the model the op belongs to (provenance; not a model
	// input).
	CNN string `json:"cnn"`
	// GPU is the stable device registry ID the op ran on.
	GPU gpu.ID `json:"gpu"`
	// Node is the graph node the op instance occupies.
	Node graph.NodeID `json:"node"`
	// Op is the operation type.
	Op ops.Type `json:"op"`
	// Features is the op's regression feature vector (input sizes).
	Features []float64 `json:"features"`
	// Seconds is the observed compute time.
	Seconds float64 `json:"seconds"`
}

// Validate checks one observation against the loading process's
// registries — the same discipline as the profile state codec.
func (o *Obs) Validate() error {
	if _, ok := gpu.Lookup(o.GPU); !ok {
		return fmt.Errorf("trace: observation references unregistered device %q", o.GPU)
	}
	if _, ok := ops.Lookup(o.Op); !ok {
		return fmt.Errorf("trace: observation has unknown op type %q", o.Op)
	}
	if len(o.Features) == 0 {
		return fmt.Errorf("trace: observation %s/%s has no features", o.GPU, o.Op)
	}
	if math.IsNaN(o.Seconds) || math.IsInf(o.Seconds, 0) || o.Seconds < 0 {
		return fmt.Errorf("trace: observation %s/%s has invalid seconds %v", o.GPU, o.Op, o.Seconds)
	}
	return nil
}

// Observations streams the profile's series as observations, in node
// order, carrying each series' mean compute time. Emission stops at
// the first emit error, which is returned.
func (p *Profile) Observations(emit func(Obs) error) error {
	for _, s := range p.Series {
		o := Obs{
			CNN:      p.CNN,
			GPU:      p.GPU,
			Node:     s.Node,
			Op:       s.OpType,
			Features: s.Features,
			Seconds:  s.Agg.Mean(),
		}
		if err := emit(o); err != nil {
			return err
		}
	}
	return nil
}

// Observations streams the bundle's profiles as one observation
// sequence in deterministic order: profiles in bundle order, series in
// node order — the exact row order the batch trainer consumes, so a
// fit over the stream reproduces a fit over the materialized bundle
// bit for bit.
func (b *Bundle) Observations(emit func(Obs) error) error {
	for _, p := range b.Profiles {
		if err := p.Observations(emit); err != nil {
			return err
		}
	}
	return nil
}

// ObsWriter encodes observations as JSONL: one compact JSON object per
// line, in emission order, Go's shortest-round-trip float encoding —
// byte-deterministic for a deterministic stream.
type ObsWriter struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewObsWriter wraps w for observation logging.
func NewObsWriter(w io.Writer) *ObsWriter {
	bw := bufio.NewWriter(w)
	return &ObsWriter{w: bw, enc: json.NewEncoder(bw)}
}

// Write appends one observation record.
func (w *ObsWriter) Write(o Obs) error {
	if err := w.enc.Encode(o); err != nil {
		return fmt.Errorf("trace: encoding observation: %w", err)
	}
	return nil
}

// Flush drains buffered records to the underlying writer.
func (w *ObsWriter) Flush() error { return w.w.Flush() }

// ObsReader decodes a JSONL observation log, validating each record
// and reporting errors with their 1-based line number. Blank lines are
// skipped. Like the campaign checkpoint codec, the reader tolerates a
// torn final line — the footprint of a process killed mid-append: a
// record that fails to decode is an error only when another record
// follows it; a trailing fragment ends the stream cleanly (check Torn
// when truncation must be surfaced, e.g. for in-memory request bodies
// that cannot legitimately be torn).
type ObsReader struct {
	sc   *bufio.Scanner
	line int // 1-based line of the last record returned

	primed  bool
	cur     []byte // owned copy of the next non-blank line ("" = EOF)
	curLine int
	torn    int // 1-based line of a tolerated torn tail (0 = none)
}

// NewObsReader wraps r for observation replay.
func NewObsReader(r io.Reader) *ObsReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return &ObsReader{sc: sc}
}

// advance loads the next non-blank line into cur (copied out of the
// scanner's reused buffer), reporting whether one exists.
func (r *ObsReader) advance() bool {
	for r.sc.Scan() {
		r.curLine++
		raw := bytes.TrimSpace(r.sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		r.cur = append(r.cur[:0], raw...)
		return true
	}
	r.cur = nil
	return false
}

// Read returns the next observation, or io.EOF at the end of the log.
func (r *ObsReader) Read() (Obs, error) {
	if !r.primed {
		r.primed = true
		r.advance()
	}
	if r.cur == nil {
		if err := r.sc.Err(); err != nil {
			return Obs{}, fmt.Errorf("trace: reading observation log: %w", err)
		}
		return Obs{}, io.EOF
	}
	line := r.curLine
	var o Obs
	dec := json.NewDecoder(bytes.NewReader(r.cur))
	dec.DisallowUnknownFields()
	decErr := dec.Decode(&o)
	hasNext := r.advance() // cur is fully consumed by the decoder above
	if decErr != nil {
		if !hasNext {
			// Torn tail from an interrupted append: the intact prefix
			// is the whole log.
			r.torn = line
			return Obs{}, io.EOF
		}
		return Obs{}, fmt.Errorf("trace: observation log line %d: %w", line, decErr)
	}
	if err := o.Validate(); err != nil {
		return Obs{}, fmt.Errorf("trace: observation log line %d: %w", line, err)
	}
	r.line = line
	return o, nil
}

// Line returns the 1-based line number of the last record returned.
func (r *ObsReader) Line() int { return r.line }

// Torn returns the 1-based line number of a tolerated torn final line,
// or 0 if the log ended cleanly. Meaningful once Read has returned
// io.EOF.
func (r *ObsReader) Torn() int { return r.torn }

// WriteObsLog streams a bundle's observations to w as JSONL.
func WriteObsLog(w io.Writer, b *Bundle) error {
	ow := NewObsWriter(w)
	if err := b.Observations(ow.Write); err != nil {
		return err
	}
	return ow.Flush()
}

// ReadObsLog materializes a full observation log (convenience for
// tests and small replays; the calibration loop streams instead).
func ReadObsLog(r io.Reader) ([]Obs, error) {
	or := NewObsReader(r)
	var out []Obs
	for {
		o, err := or.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
}
