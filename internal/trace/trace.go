// Package trace holds the op-level profiling data the simulator
// produces and Ceer consumes: per-node compute-time samples aggregated
// over training iterations, tagged with the CNN, GPU model, operation
// type, class, and regression features.
//
// Aggregation uses Welford's online algorithm so a 1,000-iteration
// profile of a 3,000-node graph needs constant memory per node, while a
// capped reservoir of raw samples is retained for median-based
// estimators (Ceer's light/CPU-op models) and distribution plots.
package trace

import (
	"fmt"
	"math"
	"sort"

	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/ops"
)

// Agg is an online mean/variance accumulator with bounded raw-sample
// retention.
type Agg struct {
	n        int
	mean, m2 float64
	min, max float64
	// retained holds up to cap raw samples (the first cap observations;
	// samples are exchangeable here because the noise process is i.i.d.).
	retained []float64
	cap      int
}

// NewAgg creates an accumulator retaining at most retain raw samples.
func NewAgg(retain int) *Agg {
	return &Agg{cap: retain, min: math.Inf(1), max: math.Inf(-1)}
}

// RestoreAgg rebuilds an accumulator from exported summary statistics
// and an optional retained-sample slice (see Profile.ImportJSON). The
// restored accumulator reports the same N, Mean, Std, Min, Max, and
// Retained values; further Add calls behave normally.
func RestoreAgg(n int, mean, std, min, max float64, retained []float64) *Agg {
	a := &Agg{
		n:        n,
		mean:     mean,
		m2:       std * std * float64(n),
		min:      min,
		max:      max,
		retained: append([]float64(nil), retained...),
		cap:      len(retained),
	}
	return a
}

// Add folds one observation into the accumulator.
func (a *Agg) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
	if x < a.min {
		a.min = x
	}
	if x > a.max {
		a.max = x
	}
	if len(a.retained) < a.cap {
		a.retained = append(a.retained, x)
	}
}

// N returns the observation count.
func (a *Agg) N() int { return a.n }

// Mean returns the running mean (0 when empty).
func (a *Agg) Mean() float64 { return a.mean }

// Std returns the population standard deviation.
func (a *Agg) Std() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n))
}

// NormalizedStd returns Std/Mean, the paper's Figure 5 metric (0 when
// the mean is 0).
func (a *Agg) NormalizedStd() float64 {
	if a.mean == 0 {
		return 0
	}
	return a.Std() / a.mean
}

// Min and Max return the observed extremes (±Inf when empty).
func (a *Agg) Min() float64 { return a.min }

// Max returns the largest observation.
func (a *Agg) Max() float64 { return a.max }

// Retained returns the kept raw samples (shared slice; do not modify).
func (a *Agg) Retained() []float64 { return a.retained }

// Series is the aggregated profile of one graph node on one (CNN, GPU)
// pair: the unit of Ceer's training data.
type Series struct {
	CNN    string
	GPU    gpu.ID
	Node   graph.NodeID
	OpType ops.Type
	Class  ops.Class
	Phase  graph.Phase
	// Features is the op's regression feature vector (input sizes).
	Features []float64
	// InputBytes and OutputBytes summarize the op's tensor sizes.
	InputBytes  int64
	OutputBytes int64
	// Agg holds the compute-time sample statistics (seconds).
	Agg *Agg
}

// Profile is the full op-level trace of training one CNN on one GPU
// model: one Series per graph node plus the per-iteration totals.
type Profile struct {
	CNN        string
	GPU        gpu.ID
	Iterations int
	// Params is the CNN's trainable-parameter count.
	Params int64
	// BatchSize is the per-GPU batch the profile was taken at.
	BatchSize int64
	// Series has one entry per graph node, in node order.
	Series []*Series
	// IterTotal aggregates the summed per-iteration op time (seconds),
	// excluding communication overhead.
	IterTotal *Agg
}

// ByType groups the profile's series by operation type.
func (p *Profile) ByType() map[ops.Type][]*Series {
	out := make(map[ops.Type][]*Series)
	for _, s := range p.Series {
		out[s.OpType] = append(out[s.OpType], s)
	}
	return out
}

// ClassShare returns the fraction of total mean op time contributed by
// each class — the paper's observation that heavy ops contribute
// 47%–94% and light ops < 7%.
func (p *Profile) ClassShare() map[ops.Class]float64 {
	sums := make(map[ops.Class]float64)
	total := 0.0
	for _, s := range p.Series {
		sums[s.Class] += s.Agg.Mean()
		total += s.Agg.Mean()
	}
	if total == 0 {
		return sums
	}
	for c := range sums {
		sums[c] /= total
	}
	return sums
}

// MeanIterSeconds returns the mean summed op time per iteration.
func (p *Profile) MeanIterSeconds() float64 { return p.IterTotal.Mean() }

// MissingCell records one measurement-campaign cell that produced no
// surviving observation: the cell's identity plus why it is missing
// (retries exhausted, permanent fault, ...). Missing cells are how a
// partially-covered campaign degrades gracefully instead of aborting —
// downstream training fits on the surviving data and marks the
// affected devices as degraded.
type MissingCell struct {
	CNN string
	GPU gpu.ID
	// K is the GPU count of a communication cell; 0 marks an op-level
	// profile cell.
	K int
	// Reason describes the final failure.
	Reason string
}

// String renders "cnn/gpu" or "cnn/gpu/k" plus the reason.
func (m MissingCell) String() string {
	if m.K > 0 {
		return fmt.Sprintf("%s/%s/k=%d: %s", m.CNN, m.GPU, m.K, m.Reason)
	}
	return fmt.Sprintf("%s/%s: %s", m.CNN, m.GPU, m.Reason)
}

// Bundle is a set of profiles spanning CNNs and GPU models — Ceer's
// training corpus.
type Bundle struct {
	Profiles []*Profile
	// Missing records campaign cells with no observation, sorted by
	// (CNN, GPU, K). Empty for fully covered campaigns.
	Missing []MissingCell
}

// AddMissing records an uncovered cell, keeping Missing sorted.
func (b *Bundle) AddMissing(c MissingCell) {
	i := sort.Search(len(b.Missing), func(i int) bool {
		m := b.Missing[i]
		if m.CNN != c.CNN {
			return m.CNN > c.CNN
		}
		if m.GPU != c.GPU {
			return m.GPU > c.GPU
		}
		return m.K >= c.K
	})
	b.Missing = append(b.Missing, MissingCell{})
	copy(b.Missing[i+1:], b.Missing[i:])
	b.Missing[i] = c
}

// MissingForGPU returns the uncovered cells of one device.
func (b *Bundle) MissingForGPU(m gpu.ID) []MissingCell {
	var out []MissingCell
	for _, c := range b.Missing {
		if c.GPU == m {
			out = append(out, c)
		}
	}
	return out
}

// Add appends a profile.
func (b *Bundle) Add(p *Profile) { b.Profiles = append(b.Profiles, p) }

// Filter returns the profiles matching the predicate.
func (b *Bundle) Filter(keep func(*Profile) bool) []*Profile {
	var out []*Profile
	for _, p := range b.Profiles {
		if keep(p) {
			out = append(out, p)
		}
	}
	return out
}

// ForGPU returns the profiles measured on one GPU model.
func (b *Bundle) ForGPU(m gpu.ID) []*Profile {
	return b.Filter(func(p *Profile) bool { return p.GPU == m })
}

// ForCNN returns the profiles of one CNN across GPUs.
func (b *Bundle) ForCNN(name string) []*Profile {
	return b.Filter(func(p *Profile) bool { return p.CNN == name })
}

// Find returns the profile of (cnn, gpu), if present.
func (b *Bundle) Find(cnn string, m gpu.ID) (*Profile, bool) {
	for _, p := range b.Profiles {
		if p.CNN == cnn && p.GPU == m {
			return p, true
		}
	}
	return nil, false
}

// CNNs lists the distinct CNN names present, sorted.
func (b *Bundle) CNNs() []string {
	seen := make(map[string]bool)
	for _, p := range b.Profiles {
		seen[p.CNN] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MeanTimeByType returns, for one GPU model, the mean compute time of
// each op type averaged over every instance and iteration in the bundle
// — the quantity plotted in the paper's Figure 2.
func (b *Bundle) MeanTimeByType(m gpu.ID) map[ops.Type]float64 {
	sums := make(map[ops.Type]float64)
	counts := make(map[ops.Type]float64)
	for _, p := range b.ForGPU(m) {
		for _, s := range p.Series {
			sums[s.OpType] += s.Agg.Mean() * float64(s.Agg.N())
			counts[s.OpType] += float64(s.Agg.N())
		}
	}
	out := make(map[ops.Type]float64, len(sums))
	for t, sum := range sums {
		if counts[t] > 0 {
			out[t] = sum / counts[t]
		}
	}
	return out
}

// Validate checks structural consistency of a profile.
func (p *Profile) Validate() error {
	if p.Iterations <= 0 {
		return fmt.Errorf("trace: profile %s/%s has %d iterations", p.CNN, p.GPU, p.Iterations)
	}
	for _, s := range p.Series {
		if s.Agg == nil || s.Agg.N() != p.Iterations {
			return fmt.Errorf("trace: series %s in %s/%s has %d samples, want %d",
				s.OpType, p.CNN, p.GPU, s.Agg.N(), p.Iterations)
		}
	}
	return nil
}
