package experiments

import (
	"fmt"
	"math"

	"ceer/internal/ceer"
	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/gpu"
	"ceer/internal/sim"
	"ceer/internal/stats"
	"ceer/internal/textutil"
	"ceer/internal/zoo"
)

// Sec4BResult reproduces the Section IV-B model-quality numbers: per
// heavy-op training R² (paper band 0.84–0.98) and held-out MAPE (paper
// band 2%–10%), plus which operations required a quadratic fit.
type Sec4BResult struct {
	Evals []ceer.OpModelEval
	// R2Min and R2Max bound the training R² across op models.
	R2Min, R2Max float64
	// MedianTestMAPE is the median per-op held-out MAPE.
	MedianTestMAPE float64
	// QuadraticOps lists (GPU family, op) pairs that selected degree 2.
	QuadraticOps []string
}

// Sec4B profiles the test CNNs and evaluates every heavy-op model.
func Sec4B(c *Context) (*Sec4BResult, error) {
	prof := &sim.Profiler{Seed: c.measureSeed() + 1, Iterations: 50, Retain: 8, Workers: c.Workers}
	testBundle, err := prof.ProfileAll(c.Ctx, zoo.Build, zoo.TestSet(), c.Batch, gpu.All())
	if err != nil {
		return nil, err
	}
	evals := c.Pred.EvaluateOpModels(testBundle)
	if len(evals) == 0 {
		return nil, fmt.Errorf("experiments: no op-model evaluations")
	}
	res := &Sec4BResult{Evals: evals, R2Min: math.Inf(1), R2Max: math.Inf(-1)}
	var mapes []float64
	for _, e := range evals {
		if e.TrainR2 < res.R2Min {
			res.R2Min = e.TrainR2
		}
		if e.TrainR2 > res.R2Max {
			res.R2Max = e.TrainR2
		}
		mapes = append(mapes, e.TestMAPE)
		if e.Degree == 2 {
			res.QuadraticOps = append(res.QuadraticOps, fmt.Sprintf("%s/%s", e.GPU.Family(), e.OpType))
		}
	}
	res.MedianTestMAPE = stats.Median(mapes)
	return res, nil
}

// Table renders the per-op model quality.
func (r *Sec4BResult) Table() *textutil.Table {
	t := &textutil.Table{
		Title:  "Sec. IV-B — Heavy-operation model quality",
		Header: []string{"GPU", "operation", "degree", "train R^2", "test MAPE", "test n"},
	}
	for _, e := range r.Evals {
		t.AddRow(e.GPU.Family(), string(e.OpType), fmt.Sprintf("%d", e.Degree),
			fmt.Sprintf("%.3f", e.TrainR2), textutil.Pct(e.TestMAPE), fmt.Sprintf("%d", e.TestObs))
	}
	t.AddNote("train R^2 range: %.2f-%.2f (paper: 0.84-0.98)", r.R2Min, r.R2Max)
	t.AddNote("median held-out MAPE: %s (paper: 2%%-10%%)", textutil.Pct(r.MedianTestMAPE))
	t.AddNote("%d models selected a quadratic fit (paper: e.g. Conv2DBackpropFilter)", len(r.QuadraticOps))
	return t
}

// AblationCell is one (CNN, GPU) ablation comparison.
type AblationCell struct {
	CNN string
	GPU gpu.ID
	// Errors maps each predictor variant to its absolute relative error
	// on single-GPU training time.
	Errors map[ceer.Variant]float64
}

// Sec4AResult reproduces the Section IV-A ablation claims: ignoring the
// CPU↔GPU communication overhead hurts single-GPU predictions by 5–20%
// (≈30% for AlexNet), and ignoring light and CPU operations hurts
// accuracy further.
type Sec4AResult struct {
	Cells []AblationCell
	// MeanErr maps each variant to its mean absolute error.
	MeanErr map[ceer.Variant]float64
	// AlexNetNoCommErr is the AlexNet-specific no-communication error
	// (paper: ~30%).
	AlexNetNoCommErr float64
}

// Sec4A measures the ablation variants on the test CNNs (single GPU).
func Sec4A(c *Context) (*Sec4AResult, error) {
	ds := dataset.ImageNetSubset6400
	variants := []ceer.Variant{ceer.Full, ceer.NoComm, ceer.HeavyOnly, ceer.HeavyOnlyNoComm}
	res := &Sec4AResult{MeanErr: make(map[ceer.Variant]float64)}
	sums := make(map[ceer.Variant]float64)
	n := 0
	var alexErrs []float64
	for _, name := range zoo.TestSet() {
		g, err := c.Graph(name)
		if err != nil {
			return nil, err
		}
		for _, m := range gpuOrder() {
			cfg := cloud.Config{GPU: m, K: 1}
			obs, err := c.Observe(g, cfg, ds)
			if err != nil {
				return nil, err
			}
			cell := AblationCell{CNN: name, GPU: m, Errors: make(map[ceer.Variant]float64)}
			for _, v := range variants {
				pred, err := c.Pred.PredictTrainingVariant(g, cfg, ds, cloud.OnDemand, v)
				if err != nil {
					return nil, err
				}
				e := math.Abs(stats.RelErr(obs.TotalSeconds, pred.TotalSeconds))
				cell.Errors[v] = e
				sums[v] += e
			}
			if name == "alexnet" {
				alexErrs = append(alexErrs, cell.Errors[ceer.NoComm])
			}
			res.Cells = append(res.Cells, cell)
			n++
		}
	}
	for _, v := range variants {
		res.MeanErr[v] = sums[v] / float64(n)
	}
	res.AlexNetNoCommErr = stats.Mean(alexErrs)
	return res, nil
}

// Table renders the ablation study.
func (r *Sec4AResult) Table() *textutil.Table {
	t := &textutil.Table{
		Title:  "Sec. IV-A — Ablations: single-GPU training-time prediction error",
		Header: []string{"CNN", "GPU", "full", "no-comm", "heavy-only", "heavy-only-no-comm"},
	}
	for _, cell := range r.Cells {
		t.AddRow(cell.CNN, cell.GPU.Family(),
			textutil.Pct(cell.Errors[ceer.Full]), textutil.Pct(cell.Errors[ceer.NoComm]),
			textutil.Pct(cell.Errors[ceer.HeavyOnly]), textutil.Pct(cell.Errors[ceer.HeavyOnlyNoComm]))
	}
	t.AddNote("mean |error|: full %s, no-comm %s, heavy-only %s, both %s",
		textutil.Pct(r.MeanErr[ceer.Full]), textutil.Pct(r.MeanErr[ceer.NoComm]),
		textutil.Pct(r.MeanErr[ceer.HeavyOnly]), textutil.Pct(r.MeanErr[ceer.HeavyOnlyNoComm]))
	t.AddNote("AlexNet no-comm error: %s (paper: ~30%%)", textutil.Pct(r.AlexNetNoCommErr))
	return t
}

// OverallResult aggregates the headline number: the average test-set
// prediction error across CNNs and instance types (paper: ~4.2%).
type OverallResult struct {
	Errors    []float64
	MeanErr   float64
	MedianErr float64
	MaxErr    float64
	Runs      int
}

// Overall measures the full test matrix (4 CNNs × 4 GPUs × k ∈ {1,2,4}).
func Overall(c *Context) (*OverallResult, error) {
	ds := dataset.ImageNetSubset6400
	res := &OverallResult{}
	for _, name := range zoo.TestSet() {
		g, err := c.Graph(name)
		if err != nil {
			return nil, err
		}
		for _, m := range gpuOrder() {
			for _, k := range []int{1, 2, 4} {
				cfg := cloud.Config{GPU: m, K: k}
				obs, err := c.Observe(g, cfg, ds)
				if err != nil {
					return nil, err
				}
				pred, err := c.Pred.PredictTraining(g, cfg, ds, cloud.OnDemand)
				if err != nil {
					return nil, err
				}
				res.Errors = append(res.Errors, math.Abs(stats.RelErr(obs.TotalSeconds, pred.TotalSeconds)))
				res.Runs++
			}
		}
	}
	res.MeanErr = stats.Mean(res.Errors)
	res.MedianErr = stats.Median(res.Errors)
	_, res.MaxErr = stats.MinMax(res.Errors)
	return res, nil
}

// Table renders the headline accuracy summary.
func (r *OverallResult) Table() *textutil.Table {
	t := &textutil.Table{
		Title:  "Overall — Test-set prediction accuracy",
		Header: []string{"metric", "value"},
	}
	t.AddRow("runs (CNN x GPU x k)", fmt.Sprintf("%d", r.Runs))
	t.AddRow("mean |error|", textutil.Pct(r.MeanErr))
	t.AddRow("median |error|", textutil.Pct(r.MedianErr))
	t.AddRow("max |error|", textutil.Pct(r.MaxErr))
	t.AddNote("paper: ~4.2%% average test-set prediction error")
	return t
}
