package experiments

import (
	"fmt"
	"math"
	"sort"

	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/gpu"
	"ceer/internal/stats"
	"ceer/internal/textutil"
	"ceer/internal/zoo"
)

// Fig08Cell is one (test CNN, GPU model) validation measurement on the
// 4-GPU instances.
type Fig08Cell struct {
	CNN string
	GPU gpu.ID
	// ObservedSeconds / PredictedSeconds: one ImageNet epoch, k = 4.
	ObservedSeconds  float64
	PredictedSeconds float64
	// ObservedCostUSD / PredictedCostUSD: the corresponding rental cost.
	ObservedCostUSD  float64
	PredictedCostUSD float64
	// RelErr is the signed training-time prediction error.
	RelErr float64
}

// Fig08Result reproduces Figure 8: predicted vs observed training time
// and cost for the 4 test CNNs on the four 4-GPU instances.
type Fig08Result struct {
	Cells []Fig08Cell
	// AvgAbsErr is the mean absolute prediction error (paper: 5.4%).
	AvgAbsErr float64
	// RankingAgreement reports whether the predicted GPU-model ranking
	// matches the observed ranking for every CNN (paper: perfect).
	RankingAgreement bool
	// P3TimeReduction maps a slower model to the average observed
	// training-time reduction P3 achieves over it (paper: 72.4% vs P2,
	// 62.9% vs G3, 48.0% vs G4).
	P3TimeReduction map[gpu.ID]float64
	// G4Cheapest reports whether G4 delivers the lowest observed
	// training cost for the majority of the test CNNs.
	G4Cheapest bool
}

// Fig08 runs the validation test.
func Fig08(c *Context) (*Fig08Result, error) {
	ds := dataset.ImageNet
	res := &Fig08Result{P3TimeReduction: make(map[gpu.ID]float64)}
	var absErrs []float64
	obsByCNN := make(map[string]map[gpu.ID]float64)
	predByCNN := make(map[string]map[gpu.ID]float64)
	costWins := make(map[gpu.ID]int)

	for _, name := range zoo.TestSet() {
		g, err := c.Graph(name)
		if err != nil {
			return nil, err
		}
		obsByCNN[name] = make(map[gpu.ID]float64)
		predByCNN[name] = make(map[gpu.ID]float64)
		bestCostGPU, bestCost := gpu.V100, math.Inf(1)
		for _, m := range gpuOrder() {
			cfg := cloud.Config{GPU: m, K: 4}
			obs, err := c.Observe(g, cfg, ds)
			if err != nil {
				return nil, err
			}
			obsCost, err := obs.CostUSD(cloud.OnDemand)
			if err != nil {
				return nil, err
			}
			pred, err := c.Pred.PredictTraining(g, cfg, ds, cloud.OnDemand)
			if err != nil {
				return nil, err
			}
			cell := Fig08Cell{
				CNN: name, GPU: m,
				ObservedSeconds:  obs.TotalSeconds,
				PredictedSeconds: pred.TotalSeconds,
				ObservedCostUSD:  obsCost,
				PredictedCostUSD: pred.CostUSD,
				RelErr:           stats.RelErr(obs.TotalSeconds, pred.TotalSeconds),
			}
			res.Cells = append(res.Cells, cell)
			absErrs = append(absErrs, math.Abs(cell.RelErr))
			obsByCNN[name][m] = obs.TotalSeconds
			predByCNN[name][m] = pred.TotalSeconds
			if obsCost < bestCost {
				bestCost, bestCostGPU = obsCost, m
			}
		}
		costWins[bestCostGPU]++
	}
	res.AvgAbsErr = stats.Mean(absErrs)

	res.RankingAgreement = true
	for name := range obsByCNN {
		for _, a := range gpuOrder() {
			for _, b := range gpuOrder() {
				if (obsByCNN[name][a] < obsByCNN[name][b]) != (predByCNN[name][a] < predByCNN[name][b]) {
					res.RankingAgreement = false
				}
			}
		}
	}
	for _, m := range []gpu.ID{gpu.K80, gpu.M60, gpu.T4} {
		sum := 0.0
		for name := range obsByCNN {
			sum += 1 - obsByCNN[name][gpu.V100]/obsByCNN[name][m]
		}
		res.P3TimeReduction[m] = sum / float64(len(obsByCNN))
	}
	res.G4Cheapest = costWins[gpu.T4] >= len(obsByCNN)/2+1
	return res, nil
}

// Table renders the validation results.
func (r *Fig08Result) Table() *textutil.Table {
	t := &textutil.Table{
		Title:  "Fig. 8 — Validation: observed vs predicted (4-GPU instances, ImageNet epoch)",
		Header: []string{"CNN", "GPU", "obs (h)", "pred (h)", "err", "obs cost", "pred cost"},
	}
	for _, cell := range r.Cells {
		t.AddRow(cell.CNN, cell.GPU.Family(),
			textutil.Hours(cell.ObservedSeconds), textutil.Hours(cell.PredictedSeconds),
			textutil.Pct(cell.RelErr),
			textutil.USD(cell.ObservedCostUSD), textutil.USD(cell.PredictedCostUSD))
	}
	t.AddNote("average |error| = %s (paper: 5.4%%)", textutil.Pct(r.AvgAbsErr))
	t.AddNote("predicted ranking matches observed for every CNN: %v (paper: perfect agreement)", r.RankingAgreement)
	t.AddNote("P3 training-time reduction vs P2/G3/G4: %s / %s / %s (paper: 72.4%% / 62.9%% / 48.0%%)",
		textutil.Pct(r.P3TimeReduction[gpu.K80]), textutil.Pct(r.P3TimeReduction[gpu.M60]), textutil.Pct(r.P3TimeReduction[gpu.T4]))
	t.AddNote("G4 lowest-cost for most CNNs: %v", r.G4Cheapest)
	return t
}

// ScenarioCandidate is one configuration's observed and predicted
// outcome within a scenario.
type ScenarioCandidate struct {
	Cfg       cloud.Config
	HourlyUSD float64
	// ObservedSeconds / PredictedSeconds are scenario-specific: the
	// per-iteration time for the hourly-budget scenario, the full
	// training time otherwise.
	ObservedSeconds  float64
	PredictedSeconds float64
	ObservedCostUSD  float64
	PredictedCostUSD float64
	Feasible         bool
}

// Fig09Row is one test CNN's outcome in the hourly-budget scenario.
type Fig09Row struct {
	CNN        string
	Candidates []ScenarioCandidate
	// BestPredicted and BestObserved are the configurations with the
	// lowest predicted and observed per-iteration time.
	BestPredicted cloud.Config
	BestObserved  cloud.Config
	// AvgAbsErr is the per-iteration time prediction error for the CNN.
	AvgAbsErr float64
}

// Fig09Result reproduces Figure 9: minimize per-iteration training time
// under a $3/hr rental budget. The paper's best-in-budget sizes are
// 3×P2, 3×G3, 3×G4 and 1×P3 (G3 exceeds by 42¢, P3 by 6¢ — both
// tolerated as in the paper).
type Fig09Result struct {
	BudgetUSD float64
	Rows      []Fig09Row
	// CeerMatchesObserved reports whether Ceer picked the observed-best
	// configuration for every CNN.
	CeerMatchesObserved bool
	// P3DefaultPenalty maps CNN → per-iteration slowdown of the "pick
	// the largest P3 that fits" default strategy versus Ceer's choice
	// (paper: +91% for AlexNet, +27% for ResNet-101).
	P3DefaultPenalty map[string]float64
}

// fig09Candidates returns the paper's per-family best sizes under the
// $3/hr budget (with its small tolerated violations).
func fig09Candidates() []cloud.Config {
	return []cloud.Config{
		{GPU: gpu.V100, K: 1}, // $3.06 (+6¢ tolerated)
		{GPU: gpu.K80, K: 3},  // $2.70 proxy
		{GPU: gpu.T4, K: 3},   // $2.934 proxy
		{GPU: gpu.M60, K: 3},  // $3.42 proxy (+42¢ tolerated)
	}
}

// Fig09 runs the hourly-budget scenario.
func Fig09(c *Context) (*Fig09Result, error) {
	ds := dataset.ImageNet
	res := &Fig09Result{
		BudgetUSD:           3.0,
		CeerMatchesObserved: true,
		P3DefaultPenalty:    make(map[string]float64),
	}
	for _, name := range zoo.TestSet() {
		g, err := c.Graph(name)
		if err != nil {
			return nil, err
		}
		row := Fig09Row{CNN: name}
		bestObs, bestPred := math.Inf(1), math.Inf(1)
		var errs []float64
		perIterObs := make(map[cloud.Config]float64)
		for _, cfg := range fig09Candidates() {
			obs, err := c.Observe(g, cfg, ds)
			if err != nil {
				return nil, err
			}
			pred, err := c.Pred.PredictTraining(g, cfg, ds, cloud.OnDemand)
			if err != nil {
				return nil, err
			}
			hourly, err := cfg.HourlyCost(cloud.OnDemand)
			if err != nil {
				return nil, err
			}
			// Normalize to the single-GPU batch: a k-GPU iteration
			// processes k·B samples, so the comparable per-iteration time
			// is T_iter/k (equivalently, inverse training throughput).
			obsIter := obs.PerIterSeconds / float64(cfg.K)
			predIter := pred.Iter.PerIterSeconds / float64(cfg.K)
			cand := ScenarioCandidate{
				Cfg:              cfg,
				HourlyUSD:        hourly,
				ObservedSeconds:  obsIter,
				PredictedSeconds: predIter,
				Feasible:         true,
			}
			row.Candidates = append(row.Candidates, cand)
			errs = append(errs, math.Abs(stats.RelErr(obsIter, predIter)))
			perIterObs[cfg] = obsIter
			if obsIter < bestObs {
				bestObs = obsIter
				row.BestObserved = cfg
			}
			if predIter < bestPred {
				bestPred = predIter
				row.BestPredicted = cfg
			}
		}
		row.AvgAbsErr = stats.Mean(errs)
		if row.BestObserved != row.BestPredicted {
			res.CeerMatchesObserved = false
		}
		p3 := cloud.Config{GPU: gpu.V100, K: 1}
		if row.BestObserved != p3 {
			res.P3DefaultPenalty[name] = perIterObs[p3]/perIterObs[row.BestObserved] - 1
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the hourly-budget scenario.
func (r *Fig09Result) Table() *textutil.Table {
	t := &textutil.Table{
		Title:  fmt.Sprintf("Fig. 9 — Per-iteration time under a $%.2f/hr budget", r.BudgetUSD),
		Header: []string{"CNN", "config", "$/hr", "obs iter/k (ms)", "pred iter/k (ms)"},
	}
	for _, row := range r.Rows {
		for _, cand := range row.Candidates {
			marker := ""
			if cand.Cfg == row.BestPredicted {
				marker = " *"
			}
			t.AddRow(row.CNN, cand.Cfg.String()+marker, fmt.Sprintf("%.3f", cand.HourlyUSD),
				textutil.Ms(cand.ObservedSeconds), textutil.Ms(cand.PredictedSeconds))
		}
	}
	t.AddNote("* = Ceer's recommendation; optimal choice is CNN-dependent (paper: P3 for Inception-v3 & VGG-19, G4 for AlexNet & ResNet-101)")
	t.AddNote("Ceer matches the observed optimum for every CNN: %v", r.CeerMatchesObserved)
	for _, row := range r.Rows {
		if pen, ok := r.P3DefaultPenalty[row.CNN]; ok {
			t.AddNote("%s: default-P3 strategy is %s slower per iteration", row.CNN, textutil.Pct(pen))
		}
	}
	return t
}

// Fig10Result reproduces Figure 10: minimize the ImageNet training time
// of ResNet-101 under a $10 total budget.
type Fig10Result struct {
	CNN        string
	BudgetUSD  float64
	Candidates []ScenarioCandidate
	// BestPredicted / BestObserved are the feasible time-minimizing
	// configurations (paper: the 3-GPU P3 instance).
	BestPredicted cloud.Config
	BestObserved  cloud.Config
	// InfeasiblePredictedRight reports whether Ceer's feasibility calls
	// match observation for every candidate (paper: the 4-GPU P3 and
	// all P2 instances exceed the budget, and Ceer predicts so).
	InfeasiblePredictedRight bool
	// CheapestFeasibleSlowdown is the observed slowdown of training on
	// the cheapest feasible instance instead of Ceer's pick (paper:
	// 9.1× for the 1-GPU G3).
	CheapestFeasibleSlowdown float64
	AvgAbsErr                float64
}

// Fig10 runs the total-budget scenario.
func Fig10(c *Context) (*Fig10Result, error) {
	g, err := c.Graph("resnet-101")
	if err != nil {
		return nil, err
	}
	ds := dataset.ImageNet
	res := &Fig10Result{CNN: "resnet-101", BudgetUSD: 10, InfeasiblePredictedRight: true}
	bestObs, bestPred := math.Inf(1), math.Inf(1)
	var errs []float64
	cheapestHourly := math.Inf(1)
	var cheapestCfg cloud.Config
	obsTime := make(map[cloud.Config]float64)
	for _, cfg := range cloud.Configs(4) {
		obs, err := c.Observe(g, cfg, ds)
		if err != nil {
			return nil, err
		}
		obsCost, err := obs.CostUSD(cloud.OnDemand)
		if err != nil {
			return nil, err
		}
		pred, err := c.Pred.PredictTraining(g, cfg, ds, cloud.OnDemand)
		if err != nil {
			return nil, err
		}
		hourly, err := cfg.HourlyCost(cloud.OnDemand)
		if err != nil {
			return nil, err
		}
		cand := ScenarioCandidate{
			Cfg:              cfg,
			HourlyUSD:        hourly,
			ObservedSeconds:  obs.TotalSeconds,
			PredictedSeconds: pred.TotalSeconds,
			ObservedCostUSD:  obsCost,
			PredictedCostUSD: pred.CostUSD,
			Feasible:         pred.CostUSD <= res.BudgetUSD,
		}
		res.Candidates = append(res.Candidates, cand)
		errs = append(errs, math.Abs(stats.RelErr(obs.TotalSeconds, pred.TotalSeconds)))
		obsTime[cfg] = obs.TotalSeconds
		if (obsCost <= res.BudgetUSD) != cand.Feasible {
			res.InfeasiblePredictedRight = false
		}
		if cand.Feasible && pred.TotalSeconds < bestPred {
			bestPred = pred.TotalSeconds
			res.BestPredicted = cfg
		}
		if obsCost <= res.BudgetUSD {
			if obs.TotalSeconds < bestObs {
				bestObs = obs.TotalSeconds
				res.BestObserved = cfg
			}
			if hourly < cheapestHourly {
				cheapestHourly = hourly
				cheapestCfg = cfg
			}
		}
	}
	res.AvgAbsErr = stats.Mean(errs)
	if bestObs > 0 && obsTime[cheapestCfg] > 0 {
		res.CheapestFeasibleSlowdown = obsTime[cheapestCfg] / obsTime[res.BestPredicted]
	}
	return res, nil
}

// Table renders the total-budget scenario.
func (r *Fig10Result) Table() *textutil.Table {
	t := &textutil.Table{
		Title:  fmt.Sprintf("Fig. 10 — %s training time under a $%.0f total budget", r.CNN, r.BudgetUSD),
		Header: []string{"config", "obs (h)", "pred (h)", "obs cost", "pred cost", "feasible"},
	}
	for _, cand := range r.Candidates {
		marker := ""
		if cand.Cfg == r.BestPredicted {
			marker = " *"
		}
		t.AddRow(cand.Cfg.String()+marker,
			textutil.Hours(cand.ObservedSeconds), textutil.Hours(cand.PredictedSeconds),
			textutil.USD(cand.ObservedCostUSD), textutil.USD(cand.PredictedCostUSD),
			fmt.Sprintf("%v", cand.Feasible))
	}
	t.AddNote("* = Ceer's recommendation (paper: 3xP3)")
	t.AddNote("feasibility predicted correctly for every candidate: %v", r.InfeasiblePredictedRight)
	t.AddNote("cheapest feasible instance is %.1fx slower than Ceer's pick (paper: 9.1x)", r.CheapestFeasibleSlowdown)
	t.AddNote("average |error| = %s (paper: 5.9%%)", textutil.Pct(r.AvgAbsErr))
	return t
}

// CostMinResult reproduces Figures 11 and 12: minimize the training
// cost of Inception-v3 over one ImageNet epoch, under On-Demand or
// market-ratio pricing.
type CostMinResult struct {
	CNN        string
	Pricing    cloud.Pricing
	Candidates []ScenarioCandidate
	// BestPredicted / BestObserved minimize cost (paper: 1×G4 under
	// On-Demand pricing; 1×P2 under market pricing).
	BestPredicted cloud.Config
	BestObserved  cloud.Config
	AvgAbsErr     float64
	// RatioVs maps a named alternative strategy to its observed cost
	// ratio versus Ceer's pick.
	RatioVs map[string]float64
}

// costMinimization runs the shared Figures 11/12 logic.
func costMinimization(c *Context, pricing cloud.Pricing, alternatives map[string]cloud.Config) (*CostMinResult, error) {
	g, err := c.Graph("inception-v3")
	if err != nil {
		return nil, err
	}
	ds := dataset.ImageNet
	res := &CostMinResult{CNN: "inception-v3", Pricing: pricing, RatioVs: make(map[string]float64)}
	bestObs, bestPred := math.Inf(1), math.Inf(1)
	var errs []float64
	obsCosts := make(map[cloud.Config]float64)
	for _, cfg := range cloud.Configs(4) {
		obs, err := c.Observe(g, cfg, ds)
		if err != nil {
			return nil, err
		}
		obsCost, err := obs.CostUSD(pricing)
		if err != nil {
			return nil, err
		}
		pred, err := c.Pred.PredictTraining(g, cfg, ds, pricing)
		if err != nil {
			return nil, err
		}
		hourly, err := cfg.HourlyCost(pricing)
		if err != nil {
			return nil, err
		}
		cand := ScenarioCandidate{
			Cfg:              cfg,
			HourlyUSD:        hourly,
			ObservedSeconds:  obs.TotalSeconds,
			PredictedSeconds: pred.TotalSeconds,
			ObservedCostUSD:  obsCost,
			PredictedCostUSD: pred.CostUSD,
			Feasible:         true,
		}
		res.Candidates = append(res.Candidates, cand)
		errs = append(errs, math.Abs(stats.RelErr(obsCost, pred.CostUSD)))
		obsCosts[cfg] = obsCost
		if obsCost < bestObs {
			bestObs = obsCost
			res.BestObserved = cfg
		}
		if pred.CostUSD < bestPred {
			bestPred = pred.CostUSD
			res.BestPredicted = cfg
		}
	}
	res.AvgAbsErr = stats.Mean(errs)
	for name, cfg := range alternatives {
		if cost, ok := obsCosts[cfg]; ok && obsCosts[res.BestPredicted] > 0 {
			res.RatioVs[name] = cost / obsCosts[res.BestPredicted]
		}
	}
	return res, nil
}

// Fig11 runs cost minimization under On-Demand pricing.
func Fig11(c *Context) (*CostMinResult, error) {
	return costMinimization(c, cloud.OnDemand, map[string]cloud.Config{
		"cheapest instance (1xG3)":      {GPU: gpu.M60, K: 1},
		"most powerful instance (4xP3)": {GPU: gpu.V100, K: 4},
	})
}

// Fig12 runs cost minimization under market-ratio pricing.
func Fig12(c *Context) (*CostMinResult, error) {
	return costMinimization(c, cloud.MarketRatio, map[string]cloud.Config{
		"on-demand optimum (1xG4)": {GPU: gpu.T4, K: 1},
	})
}

// Table renders a cost-minimization scenario.
func (r *CostMinResult) Table() *textutil.Table {
	title := "Fig. 11 — Inception-v3 training-cost minimization (On-Demand prices)"
	if r.Pricing == cloud.MarketRatio {
		title = "Fig. 12 — Inception-v3 training-cost minimization (market-ratio prices)"
	}
	t := &textutil.Table{
		Title:  title,
		Header: []string{"config", "$/hr", "obs cost", "pred cost", "obs time (h)"},
	}
	sort.Slice(r.Candidates, func(i, j int) bool {
		return r.Candidates[i].ObservedCostUSD < r.Candidates[j].ObservedCostUSD
	})
	for _, cand := range r.Candidates {
		marker := ""
		if cand.Cfg == r.BestPredicted {
			marker = " *"
		}
		t.AddRow(cand.Cfg.String()+marker, fmt.Sprintf("%.3f", cand.HourlyUSD),
			textutil.USD(cand.ObservedCostUSD), textutil.USD(cand.PredictedCostUSD),
			textutil.Hours(cand.ObservedSeconds))
	}
	t.AddNote("* = Ceer's recommendation; observed optimum = %s", r.BestObserved)
	t.AddNote("average cost |error| = %s (paper: 2.1%%)", textutil.Pct(r.AvgAbsErr))
	for name, ratio := range r.RatioVs {
		t.AddNote("%s costs %.1fx Ceer's pick", name, ratio)
	}
	return t
}
