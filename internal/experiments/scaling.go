package experiments

import (
	"fmt"

	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/gpu"
	"ceer/internal/textutil"
	"ceer/internal/zoo"
)

// Fig06Cell is one (GPU model, GPU count) training-time measurement and
// prediction.
type Fig06Cell struct {
	K int
	// ObservedSeconds and PredictedSeconds are the end-to-end training
	// times over the 6,400-sample ImageNet subset.
	ObservedSeconds  float64
	PredictedSeconds float64
	// ReductionVs1 is the observed reduction relative to the same
	// model's single-GPU time.
	ReductionVs1 float64
}

// Fig06Result reproduces Figure 6: Inception-v1 training time versus
// the number of GPUs under data parallelism.
type Fig06Result struct {
	CNN    string
	PerGPU map[gpu.ID][]Fig06Cell
	// AvgReduction is the mean observed reduction across GPU models at
	// k = 2, 3, 4 (paper: 35.8%, 46.6%, 53.6%).
	AvgReduction map[int]float64
}

// Fig06 measures and predicts the data-parallel scaling of
// Inception-v1.
func Fig06(c *Context) (*Fig06Result, error) {
	g, err := c.Graph("inception-v1")
	if err != nil {
		return nil, err
	}
	ds := dataset.ImageNetSubset6400
	res := &Fig06Result{
		CNN:          "inception-v1",
		PerGPU:       make(map[gpu.ID][]Fig06Cell),
		AvgReduction: make(map[int]float64),
	}
	for _, m := range gpuOrder() {
		var base float64
		for k := 1; k <= 4; k++ {
			cfg := cloud.Config{GPU: m, K: k}
			obs, err := c.Observe(g, cfg, ds)
			if err != nil {
				return nil, err
			}
			pred, err := c.Pred.PredictTraining(g, cfg, ds, cloud.OnDemand)
			if err != nil {
				return nil, err
			}
			if k == 1 {
				base = obs.TotalSeconds
			}
			cell := Fig06Cell{
				K:                k,
				ObservedSeconds:  obs.TotalSeconds,
				PredictedSeconds: pred.TotalSeconds,
				ReductionVs1:     1 - obs.TotalSeconds/base,
			}
			res.PerGPU[m] = append(res.PerGPU[m], cell)
		}
	}
	for k := 2; k <= 4; k++ {
		sum := 0.0
		for _, m := range gpuOrder() {
			sum += res.PerGPU[m][k-1].ReductionVs1
		}
		res.AvgReduction[k] = sum / 4
	}
	return res, nil
}

// Table renders the Figure 6 scaling study.
func (r *Fig06Result) Table() *textutil.Table {
	t := &textutil.Table{
		Title:  "Fig. 6 — Inception-v1 training time vs #GPUs (6,400 ImageNet samples)",
		Header: []string{"GPU", "k", "observed (s)", "predicted (s)", "reduction"},
	}
	for _, m := range gpuOrder() {
		for _, cell := range r.PerGPU[m] {
			t.AddRow(m.Family(), fmt.Sprintf("%d", cell.K),
				textutil.Secs(cell.ObservedSeconds), textutil.Secs(cell.PredictedSeconds),
				textutil.Pct(cell.ReductionVs1))
		}
	}
	t.AddNote("avg reduction at k=2/3/4: %s / %s / %s (paper: 35.8%% / 46.6%% / 53.6%%)",
		textutil.Pct(r.AvgReduction[2]), textutil.Pct(r.AvgReduction[3]), textutil.Pct(r.AvgReduction[4]))
	return t
}

// Fig07Point is one CNN's communication-overhead observation.
type Fig07Point struct {
	CNN      string
	Params   int64
	Overhead float64 // seconds per iteration
}

// Fig07Series is the per-GPU overhead-vs-params relationship at one k.
type Fig07Series struct {
	GPU    gpu.ID
	Points []Fig07Point
	// Slope is seconds per parameter; R2 the linear fit quality (paper:
	// 0.88–0.98).
	Slope, Intercept, R2 float64
}

// Fig07Result reproduces Figure 7: per-iteration communication overhead
// of data parallelism (k = 2) versus the number of model parameters.
type Fig07Result struct {
	K      int
	Series []Fig07Series
}

// Fig07 measures the overhead for the 8 training CNNs at k=2 by the
// paper's subtraction method (multi-GPU per-iteration time minus
// single-GPU per-iteration time, plus the single-GPU host transfer) and
// reports the fitted linear relationship from Ceer's comm model.
func Fig07(c *Context) (*Fig07Result, error) {
	res := &Fig07Result{K: 2}
	ds := dataset.ImageNetSubset6400
	for _, m := range gpuOrder() {
		s := Fig07Series{GPU: m}
		var xs [][]float64
		var ys []float64
		for _, name := range zoo.TrainingSet() {
			g, err := c.Graph(name)
			if err != nil {
				return nil, err
			}
			obs2, err := c.Observe(g, cloud.Config{GPU: m, K: 2}, ds)
			if err != nil {
				return nil, err
			}
			overhead := obs2.PerIterSeconds - obs2.ComputeSeconds
			s.Points = append(s.Points, Fig07Point{CNN: name, Params: g.Params, Overhead: overhead})
			xs = append(xs, []float64{float64(g.Params)})
			ys = append(ys, overhead)
		}
		cm, ok := c.Pred.CommModelFor(m, 2)
		if !ok {
			return nil, fmt.Errorf("experiments: missing comm model for %s k=2", m.Family())
		}
		s.R2 = cm.Fit.RSquared(xs, ys)
		y0 := cm.Fit.Predict([]float64{0})
		y1 := cm.Fit.Predict([]float64{1e6})
		s.Intercept = y0
		s.Slope = (y1 - y0) / 1e6
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Table renders the Figure 7 overhead study.
func (r *Fig07Result) Table() *textutil.Table {
	t := &textutil.Table{
		Title:  fmt.Sprintf("Fig. 7 — Per-iteration comm overhead vs #params (k=%d)", r.K),
		Header: []string{"GPU", "CNN", "params (M)", "overhead (ms)"},
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			t.AddRow(s.GPU.Family(), p.CNN,
				fmt.Sprintf("%.1f", float64(p.Params)/1e6), textutil.Ms(p.Overhead))
		}
	}
	for _, s := range r.Series {
		t.AddNote("%s: overhead ≈ %.2fms + %.3fms/Mparam, R^2 = %.3f (paper band: 0.88-0.98)",
			s.GPU.Family(), s.Intercept*1e3, s.Slope*1e3*1e6, s.R2)
	}
	return t
}
