package experiments

import (
	"fmt"

	"ceer/internal/ops"
	"ceer/internal/textutil"
	"ceer/internal/zoo"
)

// ExtFoldRow reports one CNN's signature-fold statistics.
type ExtFoldRow struct {
	CNN string
	// Nodes is the DAG node count; Classes the unique (signature, phase)
	// count; Ratio = Classes / Nodes.
	Nodes   int
	Classes int
	Ratio   float64
	// HeavyNodes and HeavyClasses restrict the same counts to heavy-GPU
	// ops — the ones whose regression evaluations the fold saves.
	HeavyNodes   int
	HeavyClasses int
}

// ExtFoldResult quantifies the redundancy the folded serving path
// exploits (DESIGN.md "Serving-path performance"): CNN DAGs repeat
// identical modules, so unique op classes are a small fraction of
// nodes, and prediction cost scales with the former.
type ExtFoldResult struct {
	Rows []ExtFoldRow
}

// ExtFold folds every zoo CNN and tabulates class-vs-node counts.
func ExtFold(c *Context) (*ExtFoldResult, error) {
	res := &ExtFoldResult{}
	for _, name := range zoo.Names() {
		g, err := c.Graph(name)
		if err != nil {
			return nil, err
		}
		f := g.Fold()
		row := ExtFoldRow{
			CNN:     name,
			Nodes:   g.Len(),
			Classes: f.Len(),
			Ratio:   float64(f.Len()) / float64(g.Len()),
		}
		entries := f.Entries()
		for i := range entries {
			e := &entries[i]
			if c.Pred.Class.Of(e.Rep.Op.Type) == ops.HeavyGPU {
				row.HeavyClasses++
				row.HeavyNodes += e.Count
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the fold statistics.
func (r *ExtFoldResult) Table() *textutil.Table {
	t := &textutil.Table{
		Title:  "Ext. — Op-signature folding (unique classes vs. DAG nodes)",
		Header: []string{"CNN", "nodes", "classes", "ratio", "heavy nodes", "heavy classes"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.CNN, fmt.Sprintf("%d", row.Nodes), fmt.Sprintf("%d", row.Classes),
			fmt.Sprintf("%.2f", row.Ratio),
			fmt.Sprintf("%d", row.HeavyNodes), fmt.Sprintf("%d", row.HeavyClasses))
	}
	t.AddNote("the folded serving path evaluates one regression per heavy class, not per")
	t.AddNote("node, and memoizes it per (device, signature); see BENCH_predict.json")
	return t
}
