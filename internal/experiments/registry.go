package experiments

import (
	"context"
	"fmt"
	"sort"

	"ceer/internal/par"
	"ceer/internal/textutil"
)

// Renderable is any experiment result that can print its table.
type Renderable interface {
	Table() *textutil.Table
}

// Runner executes one registered experiment.
type Runner func(*Context) (Renderable, error)

// registry maps experiment IDs to runners. IDs follow the paper's
// figure/section numbering.
var registry = map[string]Runner{
	"fig1":    func(c *Context) (Renderable, error) { return Fig01(c) },
	"fig2":    func(c *Context) (Renderable, error) { return Fig02(c) },
	"fig3":    func(c *Context) (Renderable, error) { return Fig03(c) },
	"fig4":    func(c *Context) (Renderable, error) { return Fig04(c) },
	"fig5":    func(c *Context) (Renderable, error) { return Fig05(c) },
	"fig6":    func(c *Context) (Renderable, error) { return Fig06(c) },
	"fig7":    func(c *Context) (Renderable, error) { return Fig07(c) },
	"fig8":    func(c *Context) (Renderable, error) { return Fig08(c) },
	"fig9":    func(c *Context) (Renderable, error) { return Fig09(c) },
	"fig10":   func(c *Context) (Renderable, error) { return Fig10(c) },
	"fig11":   func(c *Context) (Renderable, error) { return Fig11(c) },
	"fig12":   func(c *Context) (Renderable, error) { return Fig12(c) },
	"sec3a":   func(c *Context) (Renderable, error) { return ClassShares(c) },
	"sec4a":   func(c *Context) (Renderable, error) { return Sec4A(c) },
	"sec4b":   func(c *Context) (Renderable, error) { return Sec4B(c) },
	"overall": func(c *Context) (Renderable, error) { return Overall(c) },
	// Extensions beyond the paper (DESIGN.md Section 6).
	"ext-batch":     func(c *Context) (Renderable, error) { return ExtBatch(c) },
	"ext-fold":      func(c *Context) (Renderable, error) { return ExtFold(c) },
	"ext-memory":    func(c *Context) (Renderable, error) { return ExtMemory(c) },
	"ext-selection": func(c *Context) (Renderable, error) { return ExtSelection(c) },
}

// Names returns every registered experiment ID in a stable order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		// figN sorts numerically; section/overall entries after.
		wi, wj := sortKey(out[i]), sortKey(out[j])
		if wi != wj {
			return wi < wj
		}
		return out[i] < out[j]
	})
	return out
}

func sortKey(name string) int {
	var n int
	if _, err := fmt.Sscanf(name, "fig%d", &n); err == nil {
		return n
	}
	return 100
}

// Run executes one experiment by ID.
func Run(name string, c *Context) (Renderable, error) {
	r, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(c)
}

// Result pairs an experiment ID with its result, in request order.
type Result struct {
	Name string
	Res  Renderable
}

// RunAll executes the named experiments (every registered one when
// names is empty) over a shared Context, fanning independent
// experiments out across workers goroutines (<= 0 selects GOMAXPROCS).
// ctx bounds the whole batch: cancellation stops scheduling new
// experiments and interrupts in-flight measurements. Results come back
// in request order, and each experiment derives its measurement noise
// deterministically from the context seed, so a parallel RunAll is
// indistinguishable from sequential Run calls. Unknown names are
// rejected up front, before any experiment runs.
func RunAll(ctx context.Context, c *Context, names []string, workers int) ([]Result, error) {
	if len(names) == 0 {
		names = Names()
	}
	for _, n := range names {
		if _, ok := registry[n]; !ok {
			return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", n, Names())
		}
	}
	return par.Map(ctx, workers, len(names), func(_ context.Context, i int) (Result, error) {
		res, err := Run(names[i], c)
		if err != nil {
			return Result{}, fmt.Errorf("%s: %w", names[i], err)
		}
		return Result{Name: names[i], Res: res}, nil
	})
}
