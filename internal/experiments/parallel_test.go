package experiments

import (
	"context"

	"strings"
	"sync"
	"testing"
)

// runAllSubset is a cheap-but-diverse slice of the registry: empirical
// figures, an evaluation figure, an ablation, and an extension, so the
// parallel path crosses every kind of shared-context access.
var runAllSubset = []string{"fig2", "fig3", "fig5", "fig8", "sec3a", "ext-memory"}

// TestRunAllMatchesSequential renders every experiment both ways and
// compares the tables byte for byte: running figures concurrently over
// one shared Context must not change any reported number.
func TestRunAllMatchesSequential(t *testing.T) {
	c := testContext(t)

	want := make(map[string]string, len(runAllSubset))
	for _, name := range runAllSubset {
		res, err := Run(name, c)
		if err != nil {
			t.Fatalf("sequential %s: %v", name, err)
		}
		want[name] = res.Table().String()
	}

	results, err := RunAll(context.Background(), c, runAllSubset, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(runAllSubset) {
		t.Fatalf("got %d results, want %d", len(results), len(runAllSubset))
	}
	for i, r := range results {
		if r.Name != runAllSubset[i] {
			t.Errorf("result %d is %q, want %q (order must follow the request)", i, r.Name, runAllSubset[i])
		}
		if got := r.Res.Table().String(); got != want[r.Name] {
			t.Errorf("%s: parallel table differs from sequential:\n--- parallel\n%s\n--- sequential\n%s", r.Name, got, want[r.Name])
		}
	}
}

func TestRunAllUnknownName(t *testing.T) {
	c := testContext(t)
	_, err := RunAll(context.Background(), c, []string{"fig2", "nope"}, 2)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v, want unknown-experiment rejection before running", err)
	}
}

// TestContextGraphConcurrent audits the context's lazily built graph
// cache under concurrent access (run with -race): all goroutines must
// observe the same shared, immutable graph per name.
func TestContextGraphConcurrent(t *testing.T) {
	c := testContext(t)
	names := []string{"alexnet", "vgg-19", "alexnet", "resnet-101", "vgg-19", "alexnet"}

	var wg sync.WaitGroup
	graphs := make([]any, len(names)*8)
	for rep := 0; rep < 8; rep++ {
		for i, name := range names {
			wg.Add(1)
			go func(slot int, name string) {
				defer wg.Done()
				g, err := c.Graph(name)
				if err != nil {
					t.Error(err)
					return
				}
				graphs[slot] = g
			}(rep*len(names)+i, name)
		}
	}
	wg.Wait()
	// Same name → same pointer, across all goroutines.
	byName := make(map[string]any)
	for rep := 0; rep < 8; rep++ {
		for i, name := range names {
			g := graphs[rep*len(names)+i]
			if prev, ok := byName[name]; ok && prev != g {
				t.Fatalf("%s: concurrent Graph calls returned distinct graphs", name)
			}
			byName[name] = g
		}
	}
}
