package experiments

import (
	"context"

	"fmt"
	"strings"
	"sync"
	"testing"

	"ceer/internal/ceer"
	"ceer/internal/cloud"
	"ceer/internal/gpu"
	"ceer/internal/ops"
)

var (
	ctxOnce sync.Once
	ctx     *Context
	ctxErr  error
)

func testContext(t *testing.T) *Context {
	t.Helper()
	ctxOnce.Do(func() {
		ctx, ctxErr = NewContext(context.Background(), Options{Seed: 21, ProfileIterations: 60, MeasureIters: 12})
	})
	if ctxErr != nil {
		t.Fatal(ctxErr)
	}
	return ctx
}

func TestFig01(t *testing.T) {
	r, err := Fig01(testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes < 500 {
		t.Errorf("Inception-v3 DAG has %d nodes, suspiciously few", r.Nodes)
	}
	if !strings.Contains(r.DOT, "digraph") || !strings.Contains(r.DOT, "Conv2D") {
		t.Error("DOT output malformed")
	}
	if r.UniqueTypes < 15 || r.UniqueTypes > 45 {
		t.Errorf("unique op types = %d, expected a small vocabulary", r.UniqueTypes)
	}
	if s := r.Table().String(); !strings.Contains(s, "Fig. 1") {
		t.Error("table render broken")
	}
}

func TestFig02Claims(t *testing.T) {
	r, err := Fig02(testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 20 {
		t.Errorf("Fig. 2 has %d heavy ops, want 20", len(r.Rows))
	}
	// Paper: P3 ~10× vs P2, ~4× vs G4, P2 ~1.5× vs G3.
	if v := r.AvgRatioVsP3[gpu.K80]; v < 8 || v > 12.5 {
		t.Errorf("P2/P3 ratio = %.1f, want ~10", v)
	}
	if v := r.AvgRatioVsP3[gpu.T4]; v < 3 || v > 5.5 {
		t.Errorf("G4/P3 ratio = %.1f, want ~4", v)
	}
	if v := r.AvgRatioVsP3[gpu.K80] / r.AvgRatioVsP3[gpu.M60]; v < 1.2 || v > 1.9 {
		t.Errorf("P2/G3 ratio = %.2f, want ~1.5", v)
	}
	// Per-op ordering: P3 fastest everywhere, P2 slowest almost always.
	for _, row := range r.Rows {
		if row.Seconds[gpu.V100] >= row.Seconds[gpu.T4] {
			t.Errorf("%s: P3 not fastest", row.OpType)
		}
	}
}

func TestFig03Claims(t *testing.T) {
	r, err := Fig03(testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: G4 cheapest for 16/20, P3 for the 4 pooling ops.
	if r.WinCounts[gpu.T4] < 12 {
		t.Errorf("G4 wins %d ops, paper says 16", r.WinCounts[gpu.T4])
	}
	if !r.PoolingP3Wins {
		t.Error("P3 should be cheapest on the pooling operations")
	}
	if r.WinCounts[gpu.V100] < 4 {
		t.Errorf("P3 wins %d ops, paper says 4", r.WinCounts[gpu.V100])
	}
}

func TestFig04Claims(t *testing.T) {
	r, err := Fig04(testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 4 {
		t.Fatalf("Fig. 4 series = %d", len(r.Series))
	}
	for _, s := range r.Series {
		if s.R2 < 0.8 {
			t.Errorf("%s ReLU fit R² = %.3f, want linear scaling", s.GPU.Family(), s.R2)
		}
		if s.Slope <= 0 {
			t.Errorf("%s ReLU slope non-positive", s.GPU.Family())
		}
	}
	// Slopes order with memory bandwidth: P2 steepest, P3 shallowest.
	slope := map[gpu.ID]float64{}
	for _, s := range r.Series {
		slope[s.GPU] = s.Slope
	}
	if !(slope[gpu.V100] < slope[gpu.T4] && slope[gpu.T4] < slope[gpu.K80]) {
		t.Errorf("ReLU slopes not ordered by GPU speed: %v", slope)
	}
}

func TestFig05Claims(t *testing.T) {
	r, err := Fig05(testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range gpu.All() {
		if r.FracBelow01[m] < 0.95 {
			t.Errorf("%s: only %.1f%% of heavy-op deviations below 0.1 (paper: 95%%)",
				m.Family(), r.FracBelow01[m]*100)
		}
		if r.P95[m] <= 0 {
			t.Errorf("%s: p95 = %v", m.Family(), r.P95[m])
		}
	}
}

func TestSec3AClaims(t *testing.T) {
	r, err := ClassShares(testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Share) != 8 {
		t.Errorf("class shares for %d CNNs, want 8", len(r.Share))
	}
	for cnn, s := range r.Share {
		if s[ops.HeavyGPU] < 0.47 {
			t.Errorf("%s heavy share %.2f below the paper's 47%% floor", cnn, s[ops.HeavyGPU])
		}
		if s[ops.LightGPU] > 0.07 {
			t.Errorf("%s light share %.2f above the paper's 7%% ceiling", cnn, s[ops.LightGPU])
		}
	}
}

func TestFig06Claims(t *testing.T) {
	r, err := Fig06(testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: average reductions 35.8%, 46.6%, 53.6% at k=2,3,4. The
	// reproduction runs a few points stronger at k=3,4 (see
	// EXPERIMENTS.md); the bands bound that drift.
	bands := map[int][2]float64{2: {0.28, 0.47}, 3: {0.38, 0.58}, 4: {0.45, 0.66}}
	for k, band := range bands {
		if v := r.AvgReduction[k]; v < band[0] || v > band[1] {
			t.Errorf("k=%d avg reduction = %.1f%%, want within [%.0f%%, %.0f%%]",
				k, v*100, band[0]*100, band[1]*100)
		}
	}
	// Diminishing returns: step k=1→2 bigger than 2→3 bigger than 3→4.
	step2 := r.AvgReduction[2]
	step3 := r.AvgReduction[3] - r.AvgReduction[2]
	step4 := r.AvgReduction[4] - r.AvgReduction[3]
	if !(step2 > step3 && step3 > step4) {
		t.Errorf("reductions not diminishing: %.2f %.2f %.2f", step2, step3, step4)
	}
	// Predictions track observations.
	for _, m := range gpu.All() {
		for _, cell := range r.PerGPU[m] {
			rel := cell.PredictedSeconds/cell.ObservedSeconds - 1
			if rel < -0.2 || rel > 0.2 {
				t.Errorf("%s k=%d prediction off by %.1f%%", m.Family(), cell.K, rel*100)
			}
		}
	}
}

func TestFig07Claims(t *testing.T) {
	r, err := Fig07(testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.Series {
		if s.R2 < 0.85 {
			t.Errorf("%s comm fit R² = %.3f (paper band 0.88-0.98)", s.GPU.Family(), s.R2)
		}
		if s.Slope <= 0 {
			t.Errorf("%s comm slope non-positive", s.GPU.Family())
		}
		if len(s.Points) != 8 {
			t.Errorf("%s has %d points, want 8 training CNNs", s.GPU.Family(), len(s.Points))
		}
	}
}

func TestFig08Claims(t *testing.T) {
	r, err := Fig08(testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 16 {
		t.Fatalf("Fig. 8 has %d cells, want 16", len(r.Cells))
	}
	if r.AvgAbsErr > 0.12 {
		t.Errorf("avg validation error = %.1f%% (paper: 5.4%%)", r.AvgAbsErr*100)
	}
	if !r.RankingAgreement {
		t.Error("predicted ranking should match observed for every CNN")
	}
	// P3 reduction bands around the paper's 72.4/62.9/48.0%. The
	// reproduction's ratios run somewhat higher (see EXPERIMENTS.md);
	// the ordering P2 > G3 > G4 is the invariant.
	if v := r.P3TimeReduction[gpu.K80]; v < 0.60 || v > 0.95 {
		t.Errorf("P3 vs P2 reduction = %.1f%%, paper 72.4%%", v*100)
	}
	if v := r.P3TimeReduction[gpu.T4]; v < 0.35 || v > 0.75 {
		t.Errorf("P3 vs G4 reduction = %.1f%%, paper 48.0%%", v*100)
	}
	if !(r.P3TimeReduction[gpu.K80] > r.P3TimeReduction[gpu.M60] &&
		r.P3TimeReduction[gpu.M60] > r.P3TimeReduction[gpu.T4]) {
		t.Error("P3 reductions must order P2 > G3 > G4")
	}
	if !r.G4Cheapest {
		t.Error("G4 should deliver the lowest training cost for most test CNNs")
	}
}

func TestFig09Claims(t *testing.T) {
	r, err := Fig09(testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	if !r.CeerMatchesObserved {
		t.Error("Ceer should pick the observed-best configuration for every CNN")
	}
	best := map[string]cloud.Config{}
	for _, row := range r.Rows {
		best[row.CNN] = row.BestPredicted
		if row.AvgAbsErr > 0.12 {
			t.Errorf("%s per-iteration error = %.1f%% (paper: 5.6%%)", row.CNN, row.AvgAbsErr*100)
		}
	}
	// Paper: P3 optimal for Inception-v3 and VGG-19; G4 for AlexNet and
	// ResNet-101. In this reproduction the CNN-dependent crossover holds
	// with G4 winning ResNet-101; AlexNet lands on P3 because the paper's
	// stated AlexNet outcome is incompatible with its own linear
	// communication model (see EXPERIMENTS.md).
	if best["inception-v3"].GPU != gpu.V100 {
		t.Errorf("inception-v3 best = %s, paper says 1xP3", best["inception-v3"])
	}
	if best["vgg-19"].GPU != gpu.V100 {
		t.Errorf("vgg-19 best = %s, paper says 1xP3", best["vgg-19"])
	}
	if best["resnet-101"].GPU != gpu.T4 {
		t.Errorf("resnet-101 best = %s, paper says 3xG4", best["resnet-101"])
	}
	if pen := r.P3DefaultPenalty["resnet-101"]; pen < 0.03 {
		t.Errorf("resnet-101 default-P3 penalty = %.0f%%, paper ~27%%", pen*100)
	}
}

func TestFig10Claims(t *testing.T) {
	r, err := Fig10(testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.BestPredicted.GPU != gpu.V100 || r.BestPredicted.K != 3 {
		t.Errorf("best = %s, paper says 3xP3", r.BestPredicted)
	}
	if r.BestPredicted != r.BestObserved {
		t.Errorf("predicted best %s != observed best %s", r.BestPredicted, r.BestObserved)
	}
	if !r.InfeasiblePredictedRight {
		t.Error("feasibility calls should match observation")
	}
	// P2 configs and the 4-GPU P3 must be infeasible at $10.
	for _, cand := range r.Candidates {
		if cand.Cfg.GPU == gpu.K80 && cand.Feasible {
			t.Errorf("%s should exceed the $10 budget", cand.Cfg)
		}
	}
	if r.CheapestFeasibleSlowdown < 3 {
		t.Errorf("cheapest-feasible slowdown = %.1fx, paper 9.1x", r.CheapestFeasibleSlowdown)
	}
	if r.AvgAbsErr > 0.12 {
		t.Errorf("avg error = %.1f%% (paper: 5.9%%)", r.AvgAbsErr*100)
	}
}

func TestFig11Claims(t *testing.T) {
	r, err := Fig11(testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	want := cloud.Config{GPU: gpu.T4, K: 1}
	if r.BestPredicted != want || r.BestObserved != want {
		t.Errorf("best pred/obs = %s/%s, paper says 1xG4", r.BestPredicted, r.BestObserved)
	}
	if r.AvgAbsErr > 0.10 {
		t.Errorf("cost error = %.1f%% (paper: 2.1%%)", r.AvgAbsErr*100)
	}
	if v := r.RatioVs["cheapest instance (1xG3)"]; v < 1.2 || v > 2.5 {
		t.Errorf("1xG3 ratio = %.1fx, paper 1.6x", v)
	}
	if v := r.RatioVs["most powerful instance (4xP3)"]; v < 1.3 || v > 3.0 {
		t.Errorf("4xP3 ratio = %.1fx, paper 1.8x", v)
	}
}

func TestFig12Claims(t *testing.T) {
	r, err := Fig12(testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	want := cloud.Config{GPU: gpu.K80, K: 1}
	if r.BestPredicted != want || r.BestObserved != want {
		t.Errorf("best pred/obs = %s/%s, paper says 1xP2 under market prices", r.BestPredicted, r.BestObserved)
	}
	if v := r.RatioVs["on-demand optimum (1xG4)"]; v < 1.5 || v > 4.0 {
		t.Errorf("1xG4 ratio = %.1fx, paper 2.4x", v)
	}
}

func TestSec4AClaims(t *testing.T) {
	r, err := Sec4A(testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanErr[ceer.NoComm] <= r.MeanErr[ceer.Full] {
		t.Error("dropping comm must hurt accuracy")
	}
	if r.MeanErr[ceer.HeavyOnlyNoComm] <= r.MeanErr[ceer.Full] {
		t.Error("dropping light+CPU+comm must hurt accuracy")
	}
	// Paper reports ~30%; this reproduction's communication calibration
	// (see EXPERIMENTS.md) puts AlexNet's comm share lower.
	if r.AlexNetNoCommErr < 0.04 {
		t.Errorf("AlexNet no-comm error = %.1f%%, want >= 4%%", r.AlexNetNoCommErr*100)
	}
	if r.MeanErr[ceer.Full] > 0.10 {
		t.Errorf("full-model mean error = %.1f%%", r.MeanErr[ceer.Full]*100)
	}
}

func TestSec4BClaims(t *testing.T) {
	r, err := Sec4B(testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.R2Max > 1.0001 || r.R2Min < 0.5 {
		t.Errorf("R² range [%.2f, %.2f] out of sane bounds", r.R2Min, r.R2Max)
	}
	if r.MedianTestMAPE > 0.10 {
		t.Errorf("median per-op MAPE = %.1f%% (paper band 2-10%%)", r.MedianTestMAPE*100)
	}
	if len(r.QuadraticOps) == 0 {
		t.Error("some operations should have selected a quadratic fit")
	}
}

func TestOverallClaim(t *testing.T) {
	r, err := Overall(testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Runs != 48 {
		t.Errorf("runs = %d, want 48", r.Runs)
	}
	if r.MeanErr > 0.10 {
		t.Errorf("overall mean error = %.1f%% (paper: ~4.2%%)", r.MeanErr*100)
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 20 {
		t.Errorf("registry has %d experiments, want 20", len(names))
	}
	if names[0] != "fig1" || names[11] != "fig12" {
		t.Errorf("registry order wrong: %v", names)
	}
	if _, err := Run("nope", testContext(t)); err == nil {
		t.Error("unknown experiment should error")
	}
	// Every experiment runs and renders.
	c := testContext(t)
	for _, n := range names {
		r, err := Run(n, c)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if tbl := r.Table(); tbl == nil || tbl.String() == "" {
			t.Errorf("%s renders empty table", n)
		}
	}
}

func TestTableRendersContainPaperAnchors(t *testing.T) {
	c := testContext(t)
	r8, err := Fig08(c)
	if err != nil {
		t.Fatal(err)
	}
	s := r8.Table().String()
	for _, want := range []string{"inception-v3", "alexnet", "P3", "pred"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig. 8 table missing %q", want)
		}
	}
}

func TestExtBatchClaims(t *testing.T) {
	r, err := ExtBatch(testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("batch sweep rows = %d", len(r.Rows))
	}
	// Per-sample latency is U-shaped: batch 16 beats batch 8
	// (launch/sync amortization) while very large batches pay the
	// growing Conv2DBackpropFilter contention.
	perSample := map[int64]float64{}
	for _, row := range r.Rows {
		perSample[row.Batch] = row.PerSampleMs
		if !row.BestCost.Valid() || !row.BestTime.Valid() {
			t.Errorf("batch %d produced invalid recommendations", row.Batch)
		}
	}
	if perSample[16] >= perSample[8] {
		t.Error("batch 16 should beat batch 8 per sample (amortization)")
	}
	if perSample[128] <= perSample[32] {
		t.Error("batch 128 should pay more per sample than batch 32 (contention)")
	}
}

func TestExtSelectionClaims(t *testing.T) {
	r, err := ExtSelection(testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.QuadCount["all-linear"] != 0 {
		t.Errorf("all-linear variant has %d quadratic models", r.QuadCount["all-linear"])
	}
	if r.QuadCount["all-quadratic"] <= r.QuadCount["auto"] {
		t.Error("all-quadratic should fit more degree-2 models than auto")
	}
	if r.QuadCount["auto"] < 4 {
		t.Errorf("auto selected %d quadratics, want at least Conv2DBackpropFilter on 4 GPUs", r.QuadCount["auto"])
	}
	// Auto must not be meaningfully worse than either forced variant.
	if r.MeanErr["auto"] > r.MeanErr["all-linear"]+0.01 {
		t.Errorf("auto (%.3f) worse than all-linear (%.3f)", r.MeanErr["auto"], r.MeanErr["all-linear"])
	}
	if r.MeanErr["auto"] > r.MeanErr["all-quadratic"]+0.01 {
		t.Errorf("auto (%.3f) worse than all-quadratic (%.3f)", r.MeanErr["auto"], r.MeanErr["all-quadratic"])
	}
}

func TestExtFoldClaims(t *testing.T) {
	c := testContext(t)
	r, err := ExtFold(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("fold table rows = %d, want one per zoo CNN", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Classes <= 0 || row.Classes > row.Nodes {
			t.Errorf("%s: %d classes for %d nodes", row.CNN, row.Classes, row.Nodes)
		}
		if row.HeavyClasses > row.Classes || row.HeavyNodes > row.Nodes {
			t.Errorf("%s: heavy counts exceed totals", row.CNN)
		}
		if row.HeavyClasses == 0 {
			t.Errorf("%s: no heavy classes", row.CNN)
		}
		if got := float64(row.Classes) / float64(row.Nodes); !eqExact(got, row.Ratio) {
			t.Errorf("%s: ratio %v inconsistent with counts", row.CNN, row.Ratio)
		}
		// The deep repetitive nets are the fold's raison d'être.
		if row.CNN == "resnet-152" && row.Ratio > 0.25 {
			t.Errorf("resnet-152 fold ratio %.2f, want well under 0.25", row.Ratio)
		}
	}
}

func TestExtMemoryClaims(t *testing.T) {
	r, err := ExtMemory(testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 { // 4 test CNNs x 3 batch sizes
		t.Fatalf("memory matrix rows = %d", len(r.Rows))
	}
	byKey := map[string]ExtMemoryRow{}
	for _, row := range r.Rows {
		byKey[fmt.Sprintf("%s/%d", row.CNN, row.Batch)] = row
		if row.NeedGB <= 0 {
			t.Errorf("%s@%d: non-positive estimate", row.CNN, row.Batch)
		}
		// Need grows with batch; feasibility is monotone in GPU memory.
		if row.FitsGPU[gpu.M60] && !row.FitsGPU[gpu.V100] {
			t.Errorf("%s@%d: fits 8 GB but not 16 GB?", row.CNN, row.Batch)
		}
	}
	// Everything fits everywhere at batch 32 (the paper's setting).
	for _, name := range []string{"alexnet", "inception-v3", "resnet-101", "vgg-19"} {
		row := byKey[name+"/32"]
		for m, fits := range row.FitsGPU {
			if !fits {
				t.Errorf("%s@32 should fit on %v", name, m)
			}
		}
	}
	// VGG-19 at batch 128 must not fit the 8 GB M60.
	if byKey["vgg-19/128"].FitsGPU[gpu.M60] {
		t.Error("vgg-19@128 should not fit an 8 GB M60")
	}
}

// eqExact reports a == b. Exact float equality is the contract under
// test here: the fold ratio is recomputed
// from the same integer counts it was derived from.
func eqExact(a, b float64) bool { return a == b }
