package experiments

import (
	"fmt"
	"math"

	"ceer/internal/ceer"
	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/gpu"
	"ceer/internal/sim"
	"ceer/internal/stats"
	"ceer/internal/textutil"
	"ceer/internal/zoo"
)

// The experiments below go beyond the paper's evaluation (DESIGN.md
// Section 6): a batch-size sensitivity study and a linear-vs-quadratic
// model-selection ablation.

// ExtBatchRow is one (batch size) sweep point.
type ExtBatchRow struct {
	Batch int64
	// BestCost is the cost-minimizing configuration at this batch size.
	BestCost cloud.Config
	// BestTime is the time-minimizing configuration.
	BestTime cloud.Config
	// CostUSD and Hours are the predicted optimum values.
	CostUSD float64
	Hours   float64
	// PerSampleMs is the predicted per-sample compute latency on the
	// cost-optimal configuration (throughput efficiency indicator).
	PerSampleMs float64
}

// ExtBatchResult is the batch-size sensitivity study: the paper fixes
// batch 32 per GPU; here the batch is swept to show how larger batches
// amortize both kernel-launch and communication overhead, shifting the
// cost-optimal instance.
type ExtBatchResult struct {
	CNN  string
	Rows []ExtBatchRow
}

// ExtBatch sweeps the per-GPU batch size for Inception-v3.
func ExtBatch(c *Context) (*ExtBatchResult, error) {
	res := &ExtBatchResult{CNN: "inception-v3"}
	for _, batch := range []int64{8, 16, 32, 64, 128} {
		g, err := zoo.Build(res.CNN, batch)
		if err != nil {
			return nil, err
		}
		recCost, err := c.Pred.Recommend(g, dataset.ImageNet, cloud.OnDemand,
			cloud.Configs(4), ceer.MinimizeCost)
		if err != nil {
			return nil, err
		}
		recTime, err := c.Pred.Recommend(g, dataset.ImageNet, cloud.OnDemand,
			cloud.Configs(4), ceer.MinimizeTime)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ExtBatchRow{
			Batch:       batch,
			BestCost:    recCost.Best.Cfg,
			BestTime:    recTime.Best.Cfg,
			CostUSD:     recCost.Best.CostUSD,
			Hours:       recCost.Best.TotalSeconds / 3600,
			PerSampleMs: recCost.Best.Iter.PerIterSeconds / float64(batch) * 1e3,
		})
	}
	return res, nil
}

// Table renders the batch sweep.
func (r *ExtBatchResult) Table() *textutil.Table {
	t := &textutil.Table{
		Title:  fmt.Sprintf("Ext. — Batch-size sensitivity (%s, ImageNet epoch)", r.CNN),
		Header: []string{"batch/GPU", "cheapest", "cost", "hours", "ms/sample", "fastest"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", row.Batch), row.BestCost.String(),
			textutil.USD(row.CostUSD), fmt.Sprintf("%.2f", row.Hours),
			fmt.Sprintf("%.2f", row.PerSampleMs), row.BestTime.String())
	}
	t.AddNote("per-sample cost is U-shaped: moderate batches amortize kernel-launch")
	t.AddNote("and sync overhead, while very large batches pay growing")
	t.AddNote("Conv2DBackpropFilter gradient-accumulation contention")
	return t
}

// ExtSelectionResult is the model-selection ablation: Ceer with
// automatic linear-vs-quadratic selection versus all-linear and
// all-quadratic variants, evaluated end-to-end on the test CNNs.
type ExtSelectionResult struct {
	// MeanErr maps variant name → mean absolute training-time error.
	MeanErr map[string]float64
	// QuadCount maps variant name → number of degree-2 op models.
	QuadCount map[string]int
}

// ExtSelection retrains the op models under forced degrees and compares
// test-set accuracy.
func ExtSelection(c *Context) (*ExtSelectionResult, error) {
	variants := map[string]int{"auto": 0, "all-linear": 1, "all-quadratic": 2}
	res := &ExtSelectionResult{
		MeanErr:   make(map[string]float64),
		QuadCount: make(map[string]int),
	}
	ds := dataset.ImageNetSubset6400
	for name, degree := range variants {
		pred, err := ceer.TrainWithDegree(c.TrainBundle, c.CommObs, degree)
		if err != nil {
			return nil, fmt.Errorf("experiments: training %s variant: %w", name, err)
		}
		for _, om := range pred.OpModels() {
			if om.Model().Degree == 2 {
				res.QuadCount[name]++
			}
		}
		var errs []float64
		for _, cnn := range zoo.TestSet() {
			g, err := c.Graph(cnn)
			if err != nil {
				return nil, err
			}
			for _, m := range gpu.All() {
				cfg := cloud.Config{GPU: m, K: 1}
				obs, err := sim.Train(c.Ctx, g, cfg, ds, c.MeasureIters, c.measureSeed())
				if err != nil {
					return nil, err
				}
				p, err := pred.PredictTraining(g, cfg, ds, cloud.OnDemand)
				if err != nil {
					return nil, err
				}
				errs = append(errs, math.Abs(stats.RelErr(obs.TotalSeconds, p.TotalSeconds)))
			}
		}
		res.MeanErr[name] = stats.Mean(errs)
	}
	return res, nil
}

// Table renders the selection ablation.
func (r *ExtSelectionResult) Table() *textutil.Table {
	t := &textutil.Table{
		Title:  "Ext. — Linear-vs-quadratic model-selection ablation",
		Header: []string{"variant", "quadratic models", "mean |error|"},
	}
	for _, name := range []string{"auto", "all-linear", "all-quadratic"} {
		t.AddRow(name, fmt.Sprintf("%d", r.QuadCount[name]), textutil.Pct(r.MeanErr[name]))
	}
	t.AddNote("automatic selection (Section IV-B) uses quadratics only where they pay")
	return t
}

// ExtMemoryRow is one (CNN, batch) memory-feasibility row.
type ExtMemoryRow struct {
	CNN     string
	Batch   int64
	NeedGB  float64
	FitsGPU map[gpu.ID]bool
}

// ExtMemoryResult is the GPU-memory feasibility matrix: which (CNN,
// batch size) combinations fit on which GPU models. The paper's
// Section II instance table lists 8–16 GB of GPU memory; this extension
// makes the resulting constraint explicit.
type ExtMemoryResult struct {
	Rows []ExtMemoryRow
}

// ExtMemory computes the feasibility matrix for the test CNNs.
func ExtMemory(c *Context) (*ExtMemoryResult, error) {
	res := &ExtMemoryResult{}
	for _, name := range zoo.TestSet() {
		for _, batch := range []int64{32, 64, 128} {
			g, err := zoo.Build(name, batch)
			if err != nil {
				return nil, err
			}
			need := g.EstimateMemory()
			row := ExtMemoryRow{
				CNN: name, Batch: batch,
				NeedGB:  need.TotalGB(),
				FitsGPU: make(map[gpu.ID]bool, 4),
			}
			for _, m := range gpu.All() {
				dev, ok := gpu.Lookup(m)
				if !ok {
					return nil, fmt.Errorf("experiments: unknown GPU %v", m)
				}
				row.FitsGPU[m] = need.TotalBytes() <= int64(dev.MemoryGB)*1e9
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Table renders the feasibility matrix.
func (r *ExtMemoryResult) Table() *textutil.Table {
	t := &textutil.Table{
		Title:  "Ext. — GPU-memory feasibility (weights + optimizer + activations)",
		Header: []string{"CNN", "batch", "need (GB)", "P3 16GB", "P2 12GB", "G4 16GB", "G3 8GB"},
	}
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "NO"
	}
	for _, row := range r.Rows {
		t.AddRow(row.CNN, fmt.Sprintf("%d", row.Batch), fmt.Sprintf("%.1f", row.NeedGB),
			yn(row.FitsGPU[gpu.V100]), yn(row.FitsGPU[gpu.K80]),
			yn(row.FitsGPU[gpu.T4]), yn(row.FitsGPU[gpu.M60]))
	}
	t.AddNote("use ceer.FitsGPUMemory as a recommender constraint to exclude infeasible configs")
	return t
}
