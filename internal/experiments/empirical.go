package experiments

import (
	"fmt"
	"sort"

	"ceer/internal/cloud"
	"ceer/internal/gpu"
	"ceer/internal/ops"
	"ceer/internal/regress"
	"ceer/internal/stats"
	"ceer/internal/textutil"
)

// Fig01Result is the Figure 1 reproduction: the Inception-v3 training
// DAG rendered in Graphviz DOT form.
type Fig01Result struct {
	DOT         string
	Nodes       int
	UniqueTypes int
}

// Fig01 exports the Inception-v3 DAG (paper Figure 1).
func Fig01(c *Context) (*Fig01Result, error) {
	g, err := c.Graph("inception-v3")
	if err != nil {
		return nil, err
	}
	return &Fig01Result{DOT: g.DOT(), Nodes: g.Len(), UniqueTypes: len(g.CountByType())}, nil
}

// Table summarizes the DAG statistics.
func (r *Fig01Result) Table() *textutil.Table {
	t := &textutil.Table{
		Title:  "Fig. 1 — Inception-v3 training DAG",
		Header: []string{"metric", "value"},
	}
	t.AddRow("operations (DAG nodes)", fmt.Sprintf("%d", r.Nodes))
	t.AddRow("unique operation types", fmt.Sprintf("%d", r.UniqueTypes))
	t.AddRow("DOT size (bytes)", fmt.Sprintf("%d", len(r.DOT)))
	t.AddNote("full DOT output available via ceer-experiments -fig 1 -dot")
	return t
}

// Fig02Row is one heavy operation's mean compute time per GPU model.
type Fig02Row struct {
	OpType  ops.Type
	Seconds map[gpu.ID]float64
}

// Fig02Result reproduces Figure 2: compute times of the heavy GPU
// operations across the four GPU model types, averaged over the
// training-set CNN profiles.
type Fig02Result struct {
	Rows []Fig02Row
	// AvgRatioVsP3 is the mean heavy-op slowdown of each model relative
	// to P3 (paper: P2 ≈ 10×, G4 ≈ 4×; P2 ≈ 1.5× vs G3).
	AvgRatioVsP3 map[gpu.ID]float64
}

// Fig02 computes the heavy-op compute-time matrix.
func Fig02(c *Context) (*Fig02Result, error) {
	means := make(map[gpu.ID]map[ops.Type]float64, 4)
	for _, m := range gpuOrder() {
		means[m] = c.TrainBundle.MeanTimeByType(m)
	}
	heavy := c.Pred.Class.HeavyTypes()
	res := &Fig02Result{AvgRatioVsP3: make(map[gpu.ID]float64)}
	for _, t := range heavy {
		row := Fig02Row{OpType: t, Seconds: make(map[gpu.ID]float64, 4)}
		for _, m := range gpuOrder() {
			row.Seconds[m] = means[m][t]
		}
		res.Rows = append(res.Rows, row)
	}
	// Order rows by P2 time, descending (the paper's visual ordering).
	sort.Slice(res.Rows, func(i, j int) bool {
		return res.Rows[i].Seconds[gpu.K80] > res.Rows[j].Seconds[gpu.K80]
	})
	for _, m := range gpuOrder() {
		//lint:ignore devicegeneric V100/P3 is the paper's fixed normalization baseline for the Fig. 2 slowdown ratios
		if m == gpu.V100 {
			res.AvgRatioVsP3[m] = 1
			continue
		}
		sum := 0.0
		for _, row := range res.Rows {
			if p3 := row.Seconds[gpu.V100]; p3 > 0 {
				sum += row.Seconds[m] / p3
			}
		}
		res.AvgRatioVsP3[m] = sum / float64(len(res.Rows))
	}
	return res, nil
}

// Table renders the Figure 2 matrix in milliseconds.
func (r *Fig02Result) Table() *textutil.Table {
	t := &textutil.Table{
		Title:  "Fig. 2 — Heavy-operation compute times (ms)",
		Header: []string{"operation", "P3", "P2", "G4", "G3"},
	}
	for _, row := range r.Rows {
		t.AddRow(string(row.OpType),
			textutil.Ms(row.Seconds[gpu.V100]), textutil.Ms(row.Seconds[gpu.K80]),
			textutil.Ms(row.Seconds[gpu.T4]), textutil.Ms(row.Seconds[gpu.M60]))
	}
	t.AddNote("avg slowdown vs P3: P2 %.1fx, G4 %.1fx, G3 %.1fx (paper: ~10x, ~4x, ~6.7x)",
		r.AvgRatioVsP3[gpu.K80], r.AvgRatioVsP3[gpu.T4], r.AvgRatioVsP3[gpu.M60])
	return t
}

// Fig03Row is one heavy operation's compute cost per GPU model, in
// dollars per execution (hourly price × compute time).
type Fig03Row struct {
	OpType ops.Type
	// CostUSD is the rental cost over the op's compute time on the
	// basic single-GPU instance of each model.
	CostUSD map[gpu.ID]float64
	// Cheapest is the model with the lowest cost.
	Cheapest gpu.ID
}

// Fig03Result reproduces Figure 3: operation-level compute costs.
type Fig03Result struct {
	Rows []Fig03Row
	// WinCounts counts how many operations each GPU model wins (paper:
	// G4 wins 16 of 20, P3 wins the 4 pooling ops).
	WinCounts map[gpu.ID]int
	// PoolingP3Wins reports whether P3 is cheapest for all four pooling
	// operations.
	PoolingP3Wins bool
}

// Fig03 derives per-op costs from the Figure 2 times and instance
// prices.
func Fig03(c *Context) (*Fig03Result, error) {
	f2, err := Fig02(c)
	if err != nil {
		return nil, err
	}
	hourly := make(map[gpu.ID]float64, 4)
	for _, m := range gpuOrder() {
		cost, err := cloud.Config{GPU: m, K: 1}.HourlyCost(cloud.OnDemand)
		if err != nil {
			return nil, err
		}
		hourly[m] = cost
	}
	res := &Fig03Result{WinCounts: make(map[gpu.ID]int), PoolingP3Wins: true}
	pooling := map[ops.Type]bool{ops.MaxPool: true, ops.MaxPoolGrad: true, ops.AvgPool: true, ops.AvgPoolGrad: true}
	for _, row := range f2.Rows {
		cr := Fig03Row{OpType: row.OpType, CostUSD: make(map[gpu.ID]float64, 4)}
		best, bestCost := gpu.V100, 0.0
		for i, m := range gpuOrder() {
			cost := row.Seconds[m] / 3600 * hourly[m]
			cr.CostUSD[m] = cost
			if i == 0 || cost < bestCost {
				best, bestCost = m, cost
			}
		}
		cr.Cheapest = best
		res.WinCounts[best]++
		//lint:ignore devicegeneric the paper's Fig. 3 claim under test pins pooling wins to P3/V100
		if pooling[row.OpType] && best != gpu.V100 {
			res.PoolingP3Wins = false
		}
		res.Rows = append(res.Rows, cr)
	}
	return res, nil
}

// Table renders Figure 3 in nano-dollars per execution.
func (r *Fig03Result) Table() *textutil.Table {
	t := &textutil.Table{
		Title:  "Fig. 3 — Heavy-operation compute costs (nano-$ per execution)",
		Header: []string{"operation", "P3", "P2", "G4", "G3", "cheapest"},
	}
	nd := func(v float64) string { return fmt.Sprintf("%.1f", v*1e9) }
	for _, row := range r.Rows {
		t.AddRow(string(row.OpType),
			nd(row.CostUSD[gpu.V100]), nd(row.CostUSD[gpu.K80]),
			nd(row.CostUSD[gpu.T4]), nd(row.CostUSD[gpu.M60]),
			row.Cheapest.Family())
	}
	t.AddNote("wins: G4 %d, P3 %d, G3 %d, P2 %d (paper: G4 16, P3 4)",
		r.WinCounts[gpu.T4], r.WinCounts[gpu.V100], r.WinCounts[gpu.M60], r.WinCounts[gpu.K80])
	t.AddNote("P3 cheapest on all pooling ops: %v", r.PoolingP3Wins)
	return t
}

// Fig04Series is the ReLU time-vs-input-size scatter and linear fit for
// one GPU model.
type Fig04Series struct {
	GPU gpu.ID
	// InputBytes and Seconds are the observed (size, mean time) points.
	InputBytes []float64
	Seconds    []float64
	// Slope and Intercept describe the fitted line; R2 its quality.
	Slope, Intercept, R2 float64
}

// Fig04Result reproduces Figure 4: ReLU compute time vs input size with
// regression fits.
type Fig04Result struct {
	Series []Fig04Series
}

// Fig04 collects the ReLU samples from the training bundle and fits a
// line per GPU.
func Fig04(c *Context) (*Fig04Result, error) {
	res := &Fig04Result{}
	for _, m := range gpuOrder() {
		s := Fig04Series{GPU: m}
		var xs [][]float64
		var ys []float64
		for _, prof := range c.TrainBundle.ForGPU(m) {
			for _, ser := range prof.Series {
				if ser.OpType != ops.Relu {
					continue
				}
				size := float64(ser.InputBytes)
				s.InputBytes = append(s.InputBytes, size)
				s.Seconds = append(s.Seconds, ser.Agg.Mean())
				xs = append(xs, []float64{size})
				ys = append(ys, ser.Agg.Mean())
			}
		}
		if len(xs) < 3 {
			return nil, fmt.Errorf("experiments: only %d ReLU observations on %s", len(xs), m.Family())
		}
		fit, err := regress.Fit(xs, ys, 1)
		if err != nil {
			return nil, err
		}
		// Recover slope/intercept in natural units from two probes.
		y0 := fit.Predict([]float64{0})
		y1 := fit.Predict([]float64{1e6})
		s.Intercept = y0
		s.Slope = (y1 - y0) / 1e6
		s.R2 = fit.R2
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Table summarizes the per-GPU ReLU fits.
func (r *Fig04Result) Table() *textutil.Table {
	t := &textutil.Table{
		Title:  "Fig. 4 — ReLU compute time vs input size (linear fits)",
		Header: []string{"GPU", "points", "us/MB slope", "intercept (us)", "R^2"},
	}
	for _, s := range r.Series {
		t.AddRow(s.GPU.Family(), fmt.Sprintf("%d", len(s.Seconds)),
			fmt.Sprintf("%.2f", s.Slope*1e12), // seconds per byte -> µs per MB
			textutil.Us(s.Intercept), fmt.Sprintf("%.3f", s.R2))
	}
	t.AddNote("compute time scales linearly with input size on every GPU model")
	return t
}

// Fig05Result reproduces Figure 5: the CDF of the normalized standard
// deviation (std/mean) of heavy-operation compute times per unique
// (operation, input size), for each GPU model.
type Fig05Result struct {
	// PerGPU maps each model to its sample of normalized deviations.
	PerGPU map[gpu.ID][]float64
	// FracBelow01 is the fraction of values below 0.1 per GPU (paper:
	// ~95% overall).
	FracBelow01 map[gpu.ID]float64
	// P95 is the 95th percentile of normalized deviation per GPU.
	P95 map[gpu.ID]float64
}

// Fig05 computes the variability CDF from the training bundle.
func Fig05(c *Context) (*Fig05Result, error) {
	res := &Fig05Result{
		PerGPU:      make(map[gpu.ID][]float64),
		FracBelow01: make(map[gpu.ID]float64),
		P95:         make(map[gpu.ID]float64),
	}
	for _, m := range gpuOrder() {
		var nsds []float64
		for _, prof := range c.TrainBundle.ForGPU(m) {
			for _, ser := range prof.Series {
				if !c.Pred.Class.Heavy[ser.OpType] {
					continue
				}
				nsds = append(nsds, ser.Agg.NormalizedStd())
			}
		}
		if len(nsds) == 0 {
			return nil, fmt.Errorf("experiments: no heavy series for %s", m.Family())
		}
		cdf := stats.NewCDF(nsds)
		res.PerGPU[m] = nsds
		res.FracBelow01[m] = cdf.At(0.1)
		res.P95[m] = cdf.Quantile(0.95)
	}
	return res, nil
}

// Table summarizes the variability CDF.
func (r *Fig05Result) Table() *textutil.Table {
	t := &textutil.Table{
		Title:  "Fig. 5 — CDF of normalized stddev of heavy-op compute times",
		Header: []string{"GPU", "series", "frac < 0.1", "p95"},
	}
	for _, m := range gpuOrder() {
		t.AddRow(m.Family(), fmt.Sprintf("%d", len(r.PerGPU[m])),
			textutil.Pct(r.FracBelow01[m]), fmt.Sprintf("%.3f", r.P95[m]))
	}
	t.AddNote("paper: 95%% of normalized deviations below 0.1")
	return t
}

// ClassShareResult supports the Section III-A claims: heavy operations
// contribute 47%–94% of training time; light operations < 7%.
type ClassShareResult struct {
	// Share maps CNN name → class → fraction of op time (on the
	// threshold GPU, P2).
	Share map[string]map[ops.Class]float64
}

// ClassShares computes per-CNN class contribution shares on P2.
func ClassShares(c *Context) (*ClassShareResult, error) {
	res := &ClassShareResult{Share: make(map[string]map[ops.Class]float64)}
	for _, prof := range c.TrainBundle.ForGPU(gpu.K80) {
		res.Share[prof.CNN] = prof.ClassShare()
	}
	if len(res.Share) == 0 {
		return nil, fmt.Errorf("experiments: no P2 profiles")
	}
	return res, nil
}

// Table renders the class shares.
func (r *ClassShareResult) Table() *textutil.Table {
	t := &textutil.Table{
		Title:  "Sec. III-A — Training-time share by op class (P2)",
		Header: []string{"CNN", "heavy", "light", "cpu"},
	}
	names := make([]string, 0, len(r.Share))
	for n := range r.Share {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := r.Share[n]
		t.AddRow(n, textutil.Pct(s[ops.HeavyGPU]), textutil.Pct(s[ops.LightGPU]), textutil.Pct(s[ops.CPU]))
	}
	t.AddNote("paper: heavy ops contribute 47%%-94%%; light ops < 7%%")
	return t
}

// modelParams exposes zoo parameter counts for reports.
func modelParams(c *Context, name string) (int64, error) {
	g, err := c.Graph(name)
	if err != nil {
		return 0, err
	}
	return g.Params, nil
}
