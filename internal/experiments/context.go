// Package experiments regenerates every table and figure of the
// paper's empirical study (Section III) and evaluation (Section V),
// plus the Section IV model-quality and ablation analyses. Each
// experiment returns a structured result with a Table renderer printing
// the same rows/series the paper reports.
package experiments

import (
	"context"
	"fmt"

	"ceer/internal/ceer"
	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/faults"
	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/sim"
	"ceer/internal/trace"
	"ceer/internal/zoo"
)

// Context carries a trained Ceer instance, the training-set profile
// bundle, and the simulation parameters shared by all experiments.
type Context struct {
	// Ctx bounds every measurement the experiments run (deadlines,
	// cancellation). NewContext sets it; it is never nil.
	Ctx context.Context
	// Pred is Ceer trained on the 8 training-set CNNs.
	Pred *ceer.Predictor
	// TrainBundle holds the op-level profiles of the training CNNs.
	TrainBundle *trace.Bundle
	// Coverage summarizes the training campaign's cell coverage;
	// incomplete coverage means Pred carries degraded devices.
	Coverage ceer.Coverage
	// Seed drives all "observed" measurement noise; experiment
	// measurements use seeds derived from it, distinct from the
	// training seed.
	Seed uint64
	// MeasureIters is the per-measurement iteration sample count.
	MeasureIters int
	// Batch is the per-GPU batch size (paper default 32).
	Batch int64
	// CommObs holds the communication observations the predictor was
	// trained on (reused by the model-selection ablation).
	CommObs []ceer.CommObs
	// Workers bounds the parallelism of the training campaign and of
	// RunAll: <= 0 selects GOMAXPROCS, 1 forces the serial path.
	Workers int

	// graphs memoizes zoo builds at the context batch size; the cache
	// is concurrency-safe, so experiments may share the context across
	// goroutines.
	graphs *graph.BuildCache
}

// Options tunes context construction.
type Options struct {
	Seed uint64
	// ProfileIterations for the training campaign (default 200).
	ProfileIterations int
	// MeasureIters per observed run (default 20).
	MeasureIters int
	// Workers bounds campaign and RunAll parallelism (0 = GOMAXPROCS).
	Workers int
	// Retries is the per-cell retry budget of the training campaign
	// (0 = no retries).
	Retries int
	// Faults optionally injects deterministic faults into the training
	// campaign (nil = fault-free).
	Faults *faults.Spec
	// Checkpoint, when non-empty, journals campaign progress so a
	// preempted run resumes without re-measuring completed cells.
	Checkpoint string
}

// NewContext trains Ceer on the training-set CNNs and prepares the
// experiment harness. ctx bounds the campaign and every later
// measurement run through the context.
func NewContext(ctx context.Context, opts Options) (*Context, error) {
	if opts.ProfileIterations == 0 {
		opts.ProfileIterations = 200
	}
	if opts.MeasureIters == 0 {
		opts.MeasureIters = 20
	}
	pl := ceer.DefaultPipeline(opts.Seed)
	pl.ProfileIterations = opts.ProfileIterations
	pl.Workers = opts.Workers
	pl.CheckpointPath = opts.Checkpoint
	if opts.Retries > 0 || opts.Faults != nil {
		pl.Retry = ceer.DefaultRetryPolicy(opts.Seed, opts.Retries)
	}
	inj, err := faults.NewInjector(opts.Faults)
	if err != nil {
		return nil, fmt.Errorf("experiments: fault spec: %w", err)
	}
	pl.Faults = inj
	res, err := pl.Campaign(ctx, zoo.Build, zoo.TrainingSet())
	if err != nil {
		return nil, fmt.Errorf("experiments: measurement campaign: %w", err)
	}
	pred, err := ceer.Train(res.Bundle, res.CommObs)
	if err != nil {
		return nil, fmt.Errorf("experiments: training Ceer: %w", err)
	}
	return &Context{
		Ctx:          ctx,
		Pred:         pred,
		TrainBundle:  res.Bundle,
		Coverage:     res.Coverage,
		Seed:         opts.Seed,
		MeasureIters: opts.MeasureIters,
		Batch:        zoo.DefaultBatch,
		CommObs:      res.CommObs,
		Workers:      opts.Workers,
		graphs:       graph.NewBuildCache(zoo.Build),
	}, nil
}

// Graph returns (building and caching) the named CNN at the context's
// batch size. Safe for concurrent use.
func (c *Context) Graph(name string) (*graph.Graph, error) {
	return c.graphs.Build(name, c.Batch)
}

// measureSeed separates experiment observations from training noise.
func (c *Context) measureSeed() uint64 { return c.Seed ^ 0x0B5E12345 }

// Observe runs a simulated "real" training measurement under the
// context's deadline.
func (c *Context) Observe(g *graph.Graph, cfg cloud.Config, ds dataset.Dataset) (sim.Measurement, error) {
	return sim.Train(c.Ctx, g, cfg, ds, c.MeasureIters, c.measureSeed())
}

// gpuOrder is the device registration order — for the built-in data
// files, the paper's presentation order: P3, P2, G4, G3.
func gpuOrder() []gpu.ID { return gpu.All() }
