// Package experiments regenerates every table and figure of the
// paper's empirical study (Section III) and evaluation (Section V),
// plus the Section IV model-quality and ablation analyses. Each
// experiment returns a structured result with a Table renderer printing
// the same rows/series the paper reports.
package experiments

import (
	"fmt"

	"ceer/internal/ceer"
	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/sim"
	"ceer/internal/trace"
	"ceer/internal/zoo"
)

// Context carries a trained Ceer instance, the training-set profile
// bundle, and the simulation parameters shared by all experiments.
type Context struct {
	// Pred is Ceer trained on the 8 training-set CNNs.
	Pred *ceer.Predictor
	// TrainBundle holds the op-level profiles of the training CNNs.
	TrainBundle *trace.Bundle
	// Seed drives all "observed" measurement noise; experiment
	// measurements use seeds derived from it, distinct from the
	// training seed.
	Seed uint64
	// MeasureIters is the per-measurement iteration sample count.
	MeasureIters int
	// Batch is the per-GPU batch size (paper default 32).
	Batch int64
	// CommObs holds the communication observations the predictor was
	// trained on (reused by the model-selection ablation).
	CommObs []ceer.CommObs
	// Workers bounds the parallelism of the training campaign and of
	// RunAll: <= 0 selects GOMAXPROCS, 1 forces the serial path.
	Workers int

	// graphs memoizes zoo builds at the context batch size; the cache
	// is concurrency-safe, so experiments may share the context across
	// goroutines.
	graphs *graph.BuildCache
}

// Options tunes context construction.
type Options struct {
	Seed uint64
	// ProfileIterations for the training campaign (default 200).
	ProfileIterations int
	// MeasureIters per observed run (default 20).
	MeasureIters int
	// Workers bounds campaign and RunAll parallelism (0 = GOMAXPROCS).
	Workers int
}

// NewContext trains Ceer on the training-set CNNs and prepares the
// experiment harness.
func NewContext(opts Options) (*Context, error) {
	if opts.ProfileIterations == 0 {
		opts.ProfileIterations = 200
	}
	if opts.MeasureIters == 0 {
		opts.MeasureIters = 20
	}
	pl := ceer.DefaultPipeline(opts.Seed)
	pl.ProfileIterations = opts.ProfileIterations
	pl.Workers = opts.Workers
	bundle, commObs, err := pl.Campaign(zoo.Build, zoo.TrainingSet())
	if err != nil {
		return nil, fmt.Errorf("experiments: measurement campaign: %w", err)
	}
	pred, err := ceer.Train(bundle, commObs)
	if err != nil {
		return nil, fmt.Errorf("experiments: training Ceer: %w", err)
	}
	return &Context{
		Pred:         pred,
		TrainBundle:  bundle,
		Seed:         opts.Seed,
		MeasureIters: opts.MeasureIters,
		Batch:        zoo.DefaultBatch,
		CommObs:      commObs,
		Workers:      opts.Workers,
		graphs:       graph.NewBuildCache(zoo.Build),
	}, nil
}

// Graph returns (building and caching) the named CNN at the context's
// batch size. Safe for concurrent use.
func (c *Context) Graph(name string) (*graph.Graph, error) {
	return c.graphs.Build(name, c.Batch)
}

// measureSeed separates experiment observations from training noise.
func (c *Context) measureSeed() uint64 { return c.Seed ^ 0x0B5E12345 }

// Observe runs a simulated "real" training measurement.
func (c *Context) Observe(g *graph.Graph, cfg cloud.Config, ds dataset.Dataset) (sim.Measurement, error) {
	return sim.Train(g, cfg, ds, c.MeasureIters, c.measureSeed())
}

// gpuOrder is the device registration order — for the built-in data
// files, the paper's presentation order: P3, P2, G4, G3.
func gpuOrder() []gpu.ID { return gpu.All() }
