// Package textutil renders the experiment results as aligned plain-text
// tables, the report format of cmd/ceer-experiments and the benches.
package textutil

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid with a header row and optional footnotes.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title))); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, 0, len(cells))
		for i, c := range cells {
			width := len(c)
			if i < len(widths) {
				width = widths[i]
			}
			if i == 0 {
				parts = append(parts, fmt.Sprintf("%-*s", width, c))
			} else {
				parts = append(parts, fmt.Sprintf("%*s", width, c))
			}
		}
		return strings.Join(parts, "  ")
	}
	if len(t.Header) > 0 {
		if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
			return err
		}
		total := len(t.Header) - 1
		for _, wd := range widths {
			total += wd + 1
		}
		if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "* %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b) // strings.Builder writes cannot fail
	return b.String()
}

// Ms formats seconds as milliseconds with 3 significant decimals.
func Ms(seconds float64) string { return fmt.Sprintf("%.3f", seconds*1e3) }

// Us formats seconds as microseconds.
func Us(seconds float64) string { return fmt.Sprintf("%.1f", seconds*1e6) }

// Secs formats seconds.
func Secs(seconds float64) string { return fmt.Sprintf("%.1f", seconds) }

// Hours formats seconds as hours.
func Hours(seconds float64) string { return fmt.Sprintf("%.2f", seconds/3600) }

// USD formats a dollar amount.
func USD(v float64) string { return fmt.Sprintf("$%.2f", v) }

// Pct formats a fraction as a percentage.
func Pct(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }
