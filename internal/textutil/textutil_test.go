package textutil

import (
	"errors"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:  "Demo",
		Header: []string{"name", "value"},
	}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("beta-longer", "22")
	tbl.AddNote("a note with %d format", 7)
	out := tbl.String()

	for _, want := range []string{"Demo", "====", "name", "alpha", "beta-longer", "* a note with 7 format"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	// First column left-aligned, later columns right-aligned.
	lines := strings.Split(out, "\n")
	var alphaLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "alpha") {
			alphaLine = l
		}
	}
	if alphaLine == "" || !strings.HasSuffix(alphaLine, "1") {
		t.Errorf("numeric column should be right-aligned: %q", alphaLine)
	}
}

func TestTableNoTitleNoHeader(t *testing.T) {
	tbl := &Table{}
	tbl.AddRow("only", "row")
	out := tbl.String()
	if strings.Contains(out, "===") || strings.Contains(out, "---") {
		t.Errorf("untitled headerless table should have no rules:\n%s", out)
	}
	if !strings.Contains(out, "only") {
		t.Error("row missing")
	}
}

func TestTableRaggedRows(t *testing.T) {
	tbl := &Table{Header: []string{"a", "b", "c"}}
	tbl.AddRow("1")                // shorter than header
	tbl.AddRow("1", "2", "3", "4") // longer than header
	out := tbl.String()
	if !strings.Contains(out, "4") {
		t.Error("extra cell should still render")
	}
}

// failWriter errors after n bytes to exercise Render's error paths.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("full")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestTableRenderWriteErrors(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"h"}}
	tbl.AddRow("r")
	tbl.AddNote("n")
	full := len(tbl.String())
	// Sweep failure points below the full output size; every one must
	// surface an error.
	for n := 0; n < full; n += 2 {
		if err := tbl.Render(&failWriter{n: n}); err == nil {
			t.Errorf("Render should fail with writer capacity %d (full %d)", n, full)
		}
	}
	if err := tbl.Render(&failWriter{n: full}); err != nil {
		t.Errorf("Render should succeed with exact capacity: %v", err)
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Ms(0.0123), "12.300"},
		{Us(0.0000035), "3.5"},
		{Secs(12.34), "12.3"},
		{Hours(7200), "2.00"},
		{USD(3.456), "$3.46"},
		{Pct(0.1234), "12.3%"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("formatter = %q, want %q", c.got, c.want)
		}
	}
}
