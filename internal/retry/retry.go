// Package retry adds deterministic retry-with-backoff to the
// measurement campaign. Delays grow exponentially per attempt with
// seeded jitter: the jitter stream is derived from (Policy.Seed, task
// key, attempt), never from a shared source, so a retried campaign is
// byte-identical at any worker count — the repo's reproducibility
// contract extends through its failure handling.
package retry

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"ceer/internal/faults"
	"ceer/internal/rng"
)

// Decision is what a Classifier tells the retry loop to do with a task
// error.
type Decision int

const (
	// Fail stops retrying and records the error against the task.
	Fail Decision = iota
	// Retry backs off and tries the task again (budget permitting).
	Retry
	// Abort stops the whole run, not just this task (preemption).
	Abort
)

// Classifier maps a task error to a Decision. A nil Classifier fails
// every error (no retries).
type Classifier func(error) Decision

// FaultErrors is the standard campaign classifier over the
// internal/faults taxonomy: transient faults retry, preemptions abort,
// and everything else — permanent faults included — fails the task.
func FaultErrors(err error) Decision {
	switch {
	case faults.IsPreempted(err):
		return Abort
	case faults.IsTransient(err):
		return Retry
	default:
		return Fail
	}
}

// Policy configures the retry loop. The zero value allows exactly one
// attempt with no delays — retrying is strictly opt-in.
type Policy struct {
	// MaxAttempts is the total attempt budget per task, first attempt
	// included. Values <= 0 mean 1 (no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; subsequent
	// delays multiply by Multiplier and clamp at MaxDelay. A
	// non-positive BaseDelay disables sleeping entirely.
	BaseDelay time.Duration
	// MaxDelay caps the grown delay (0 = uncapped).
	MaxDelay time.Duration
	// Multiplier grows the delay per retry; values < 1 mean 2.
	Multiplier float64
	// JitterFrac spreads each delay uniformly over ±JitterFrac of its
	// nominal value, from a stream seeded by (Seed, task key, attempt).
	JitterFrac float64
	// Seed drives the jitter streams.
	Seed uint64
	// Classify decides Fail/Retry/Abort per error; nil fails
	// everything.
	Classify Classifier
	// Sleep replaces time.Sleep (tests inject a no-op). The production
	// path ignores Sleep's interaction with ctx only in the injected
	// case; the default waits on a timer and honors cancellation.
	Sleep func(time.Duration)
}

// Attempts returns the normalized attempt budget.
func (p Policy) Attempts() int {
	if p.MaxAttempts <= 0 {
		return 1
	}
	return p.MaxAttempts
}

// ErrBudgetExhausted wraps a task's final error when its attempt
// budget ran out on a retryable failure.
var ErrBudgetExhausted = errors.New("retry: attempt budget exhausted")

// hashString seeds the per-task jitter stream from its key.
func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s)) // fnv Write never fails
	return h.Sum64()
}

// Delay returns the deterministic backoff imposed after the given
// failed attempt (1-based) of the keyed task.
func (p Policy) Delay(key string, attempt int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.JitterFrac > 0 {
		u := rng.New(p.Seed ^ hashString(key)).Derive(uint64(attempt)).Float64()
		d *= 1 + p.JitterFrac*(2*u-1)
	}
	return time.Duration(d)
}

// wait sleeps d honoring ctx; the injected Sleep, when set, is used
// verbatim (tests make it a no-op).
func (p Policy) wait(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	if p.Sleep != nil {
		p.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs fn under the policy, starting at attempt firstAttempt
// (1-based; resumed tasks pass their checkpointed attempt count + 1 so
// budgets span interruptions). fn receives the attempt number. Do
// returns nil on success; the task's error when the classifier says
// Fail or Abort (aborts keep their class for the caller to detect);
// and the final error wrapped with ErrBudgetExhausted when retries run
// out — including the degenerate firstAttempt > budget case, where fn
// never runs.
func (p Policy) Do(ctx context.Context, key string, firstAttempt int, fn func(attempt int) error) error {
	if firstAttempt < 1 {
		firstAttempt = 1
	}
	budget := p.Attempts()
	if firstAttempt > budget {
		return fmt.Errorf("%w: %s consumed %d of %d attempts before starting",
			ErrBudgetExhausted, key, firstAttempt-1, budget)
	}
	for attempt := firstAttempt; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := fn(attempt)
		if err == nil {
			return nil
		}
		decision := Fail
		if p.Classify != nil {
			decision = p.Classify(err)
		}
		if decision != Retry {
			return err
		}
		if attempt >= budget {
			return fmt.Errorf("%w after %d attempts: %w", ErrBudgetExhausted, attempt, err)
		}
		if werr := p.wait(ctx, p.Delay(key, attempt)); werr != nil {
			return werr
		}
	}
}
