package retry

import (
	"context"
	"errors"
	"testing"
	"time"

	"ceer/internal/faults"
	"ceer/internal/par"
)

// noSleep is the test policy base: real backoff delays with no real
// sleeping.
func noSleep(p Policy) Policy {
	p.Sleep = func(time.Duration) {}
	return p
}

func TestDoSucceedsFirstAttempt(t *testing.T) {
	p := noSleep(Policy{MaxAttempts: 3, Classify: FaultErrors})
	calls := 0
	err := p.Do(context.Background(), "cell", 1, func(attempt int) error {
		calls++
		if attempt != 1 {
			t.Errorf("attempt = %d, want 1", attempt)
		}
		return nil
	})
	if err != nil || calls != 1 {
		t.Errorf("err = %v, calls = %d", err, calls)
	}
}

func TestDoRetriesTransient(t *testing.T) {
	p := noSleep(Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Classify: FaultErrors})
	var attempts []int
	err := p.Do(context.Background(), "cell", 1, func(attempt int) error {
		attempts = append(attempts, attempt)
		if attempt < 3 {
			return faults.Transientf("hiccup %d", attempt)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(attempts) != 3 || attempts[0] != 1 || attempts[2] != 3 {
		t.Errorf("attempts = %v, want [1 2 3]", attempts)
	}
}

func TestDoBudgetExhausted(t *testing.T) {
	p := noSleep(Policy{MaxAttempts: 2, Classify: FaultErrors})
	calls := 0
	err := p.Do(context.Background(), "cell", 1, func(int) error {
		calls++
		return faults.Transientf("always")
	})
	if calls != 2 {
		t.Errorf("calls = %d, want 2", calls)
	}
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("err = %v, want ErrBudgetExhausted", err)
	}
	if !faults.IsTransient(err) {
		t.Error("the final task error must remain reachable through the wrap")
	}
}

func TestDoZeroRunWhenBudgetPreConsumed(t *testing.T) {
	// A checkpointed task that already consumed its whole budget must
	// not run at all.
	p := noSleep(Policy{MaxAttempts: 3, Classify: FaultErrors})
	calls := 0
	err := p.Do(context.Background(), "cell", 4, func(int) error {
		calls++
		return nil
	})
	if calls != 0 {
		t.Errorf("fn ran %d times; a pre-exhausted budget must not run it", calls)
	}
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("err = %v, want ErrBudgetExhausted", err)
	}
}

func TestDoResumedAttemptNumbering(t *testing.T) {
	p := noSleep(Policy{MaxAttempts: 5, Classify: FaultErrors})
	var attempts []int
	err := p.Do(context.Background(), "cell", 3, func(attempt int) error {
		attempts = append(attempts, attempt)
		if attempt < 4 {
			return faults.Transientf("hiccup")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(attempts) != 2 || attempts[0] != 3 || attempts[1] != 4 {
		t.Errorf("attempts = %v, want [3 4]", attempts)
	}
}

func TestDoPermanentFailsImmediately(t *testing.T) {
	p := noSleep(Policy{MaxAttempts: 5, Classify: FaultErrors})
	calls := 0
	err := p.Do(context.Background(), "cell", 1, func(int) error {
		calls++
		return faults.Permanentf("broken device")
	})
	if calls != 1 {
		t.Errorf("permanent fault retried %d times; retrying cannot help", calls-1)
	}
	if !faults.IsPermanent(err) {
		t.Errorf("err = %v, want the permanent fault back", err)
	}
}

func TestDoNilClassifierNeverRetries(t *testing.T) {
	p := noSleep(Policy{MaxAttempts: 5})
	calls := 0
	err := p.Do(context.Background(), "cell", 1, func(int) error {
		calls++
		return faults.Transientf("hiccup")
	})
	if calls != 1 || err == nil {
		t.Errorf("nil classifier must fail on first error: calls=%d err=%v", calls, err)
	}
}

func TestDoHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := noSleep(Policy{MaxAttempts: 3, Classify: FaultErrors})
	calls := 0
	err := p.Do(ctx, "cell", 1, func(int) error { calls++; return nil })
	if calls != 0 || !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ctx: calls=%d err=%v", calls, err)
	}
}

func TestFaultErrorsClassifier(t *testing.T) {
	cases := []struct {
		err  error
		want Decision
	}{
		{faults.Transientf("x"), Retry},
		{faults.Permanentf("x"), Fail},
		{faults.Preemptedf("x"), Abort},
		{errors.New("plain"), Fail},
	}
	for _, c := range cases {
		if got := FaultErrors(c.err); got != c.want {
			t.Errorf("FaultErrors(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestDelayDeterministicAndBounded(t *testing.T) {
	p := Policy{
		MaxAttempts: 10, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond,
		Multiplier: 2, JitterFrac: 0.25, Seed: 42,
	}
	for attempt := 1; attempt <= 8; attempt++ {
		d1 := p.Delay("profile/vgg-11/t4", attempt)
		d2 := p.Delay("profile/vgg-11/t4", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: delay not deterministic: %v vs %v", attempt, d1, d2)
		}
		// Nominal delay is base*mult^(attempt-1) clamped at MaxDelay;
		// jitter spreads ±25% around it.
		nominal := float64(10*time.Millisecond) * float64(int(1)<<(attempt-1))
		if nominal > float64(80*time.Millisecond) {
			nominal = float64(80 * time.Millisecond)
		}
		lo, hi := time.Duration(0.74*nominal), time.Duration(1.26*nominal)
		if d1 < lo || d1 > hi {
			t.Errorf("attempt %d: delay %v outside jitter bounds [%v, %v]", attempt, d1, lo, hi)
		}
	}
	// Different keys draw from independent jitter streams.
	if p.Delay("key-a", 1) == p.Delay("key-b", 1) {
		t.Error("distinct keys should (generically) jitter differently")
	}
	// No base delay means no sleeping at all.
	zero := Policy{MaxAttempts: 3, JitterFrac: 0.25}
	if d := zero.Delay("k", 2); d != 0 {
		t.Errorf("zero BaseDelay should yield zero delay, got %v", d)
	}
}

func TestMapRetriesPerTask(t *testing.T) {
	p := noSleep(Policy{MaxAttempts: 3, Classify: FaultErrors})
	var mu = make(chan struct{}, 1)
	fails := map[int]int{1: 2} // task 1 fails its first two attempts
	mu <- struct{}{}
	results, errs, err := Map(context.Background(), 4, 3, p, MapOptions{},
		func(_ context.Context, i, attempt int) (int, error) {
			<-mu
			left := fails[i]
			if left > 0 {
				fails[i] = left - 1
				mu <- struct{}{}
				return 0, faults.Transientf("task %d attempt %d", i, attempt)
			}
			mu <- struct{}{}
			return i * 10, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{0, 10, 20} {
		if errs[i] != nil || results[i] != want {
			t.Errorf("task %d: (%v, %v), want (%d, nil)", i, results[i], errs[i], want)
		}
	}
}

func TestMapPartialFailureContinues(t *testing.T) {
	p := noSleep(Policy{MaxAttempts: 2, Classify: FaultErrors})
	results, errs, err := Map(context.Background(), 2, 4, p, MapOptions{},
		func(_ context.Context, i, _ int) (int, error) {
			if i == 2 {
				return 0, faults.Permanentf("cell %d is cursed", i)
			}
			return i, nil
		})
	if err != nil {
		t.Fatalf("a permanent per-task failure must not stop the run: %v", err)
	}
	for i := 0; i < 4; i++ {
		if i == 2 {
			if !faults.IsPermanent(errs[i]) {
				t.Errorf("task 2 err = %v, want permanent", errs[i])
			}
			continue
		}
		if errs[i] != nil || results[i] != i {
			t.Errorf("task %d: (%v, %v)", i, results[i], errs[i])
		}
	}
}

func TestMapAbortStopsRun(t *testing.T) {
	p := noSleep(Policy{MaxAttempts: 3, Classify: FaultErrors})
	_, _, err := Map(context.Background(), 2, 4, p, MapOptions{},
		func(_ context.Context, i, _ int) (int, error) {
			if i == 1 {
				return 0, faults.Preemptedf("instance reclaimed")
			}
			return i, nil
		})
	if !faults.IsPreempted(err) {
		t.Errorf("run error = %v, want the preemption surfaced", err)
	}
	var ae *par.AbortError
	if !errors.As(err, &ae) && !faults.IsPreempted(err) {
		t.Errorf("abort should carry the cause: %v", err)
	}
}

func TestMapOnFailureObservesAttempts(t *testing.T) {
	p := noSleep(Policy{MaxAttempts: 3, Classify: FaultErrors})
	type obs struct{ i, attempt int }
	var seen []obs
	_, errs, err := Map(context.Background(), 1, 1, p, MapOptions{
		OnFailure: func(i, attempt int, err error) {
			seen = append(seen, obs{i, attempt})
			if !faults.IsTransient(err) {
				t.Errorf("observed err = %v", err)
			}
		},
	}, func(_ context.Context, i, attempt int) (int, error) {
		if attempt < 3 {
			return 0, faults.Transientf("hiccup")
		}
		return 1, nil
	})
	if err != nil || errs[0] != nil {
		t.Fatalf("err=%v errs=%v", err, errs)
	}
	if len(seen) != 2 || seen[0] != (obs{0, 1}) || seen[1] != (obs{0, 2}) {
		t.Errorf("observed failures = %v, want [{0 1} {0 2}]", seen)
	}
}

func TestMapFirstAttemptResume(t *testing.T) {
	p := noSleep(Policy{MaxAttempts: 3, Classify: FaultErrors})
	var first int
	_, errs, err := Map(context.Background(), 1, 1, p, MapOptions{
		Key:          func(int) string { return "profile/vgg-11/t4" },
		FirstAttempt: func(int) int { return 3 },
	}, func(_ context.Context, _, attempt int) (int, error) {
		if first == 0 {
			first = attempt
		}
		return attempt, nil
	})
	if err != nil || errs[0] != nil {
		t.Fatalf("err=%v errs=%v", err, errs)
	}
	if first != 3 {
		t.Errorf("resumed task started at attempt %d, want 3", first)
	}
}
