package retry

import (
	"context"

	"ceer/internal/par"
)

// MapOptions customizes per-task retry state for Map.
type MapOptions struct {
	// Key returns the task's stable identity, seeding its jitter
	// stream and labeling its errors. Nil keys tasks by index.
	Key func(i int) string
	// FirstAttempt returns the 1-based attempt a task starts at
	// (checkpointed tasks resume mid-budget). Nil starts every task at
	// attempt 1.
	FirstAttempt func(i int) int
	// OnFailure observes every failed attempt (i, attempt, err) before
	// the retry decision is acted on — the campaign checkpoint records
	// consumed attempts here. It may be called concurrently from
	// multiple workers.
	OnFailure func(i, attempt int, err error)
}

func (o MapOptions) key(i int) string {
	if o.Key == nil {
		return "task-" + itoa(i)
	}
	return o.Key(i)
}

func (o MapOptions) first(i int) int {
	if o.FirstAttempt == nil {
		return 1
	}
	return o.FirstAttempt(i)
}

// itoa avoids strconv for the tiny default-key case.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

// Map is the retryable fan-out of the campaign path: it runs n tasks
// over par.MapPartial, retrying each per the policy. Per-task outcomes
// come back input-ordered in (results, errs); the third return value
// is non-nil only when the run as a whole stopped — parent-context
// cancellation, or a task error the classifier mapped to Abort (the
// lowest-indexed aborting task wins, preserving par's determinism).
func Map[T any](ctx context.Context, workers, n int, p Policy, opts MapOptions, fn func(ctx context.Context, i, attempt int) (T, error)) ([]T, []error, error) {
	return par.MapPartial(ctx, workers, n, func(ctx context.Context, i int) (T, error) {
		var out T
		err := p.Do(ctx, opts.key(i), opts.first(i), func(attempt int) error {
			v, err := fn(ctx, i, attempt)
			if err != nil {
				if opts.OnFailure != nil {
					opts.OnFailure(i, attempt, err)
				}
				return err
			}
			out = v
			return nil
		})
		if err != nil {
			decision := Fail
			if p.Classify != nil {
				decision = p.Classify(err)
			}
			if decision == Abort {
				return out, par.Abort(err)
			}
			return out, err
		}
		return out, nil
	})
}
