// Package drift decides, deterministically, whether a fitted model
// still describes the observations streaming past it. It reads the
// windowed residual statistics a regress.SuffStats accumulates —
// windowed MAPE and the longest same-sign residual run — and compares
// them against fixed thresholds. Two complementary signals: MAPE
// catches models that became loudly wrong (a 2× device slowdown blows
// straight through any reasonable threshold), while the sign-run
// statistic catches quiet systematic bias (a model consistently 8%
// low has a modest MAPE but residuals that never change sign, which
// i.i.d. noise makes exponentially unlikely).
//
// Everything here is a pure function of the accumulator state and the
// policy — no clocks, no randomness — so a replayed observation log
// produces the identical sequence of verdicts every time.
package drift

import (
	"fmt"

	"ceer/internal/regress"
)

// Policy fixes the drift thresholds. The zero value is not usable;
// start from DefaultPolicy.
type Policy struct {
	// Window is the residual window size drift is judged over. A
	// verdict needs a full window; until then Drifted is always false
	// (cold models must not thrash).
	Window int
	// MAPEThreshold flags drift when the windowed mean absolute
	// relative residual exceeds it (fraction, e.g. 0.25 = 25%).
	MAPEThreshold float64
	// SignRun flags drift when at least this many consecutive window
	// residuals share a sign.
	SignRun int
}

// DefaultPolicy returns the standard thresholds: judged over 24
// observations, flagged at 25% windowed MAPE — comfortably above the
// paper's per-op fit errors, far below a real slowdown — or 12
// same-signed residuals in a row (p ≈ 2⁻¹¹ under symmetric noise).
func DefaultPolicy() Policy {
	return Policy{Window: 24, MAPEThreshold: 0.25, SignRun: 12}
}

// Validate rejects unusable policies.
func (p Policy) Validate() error {
	if p.Window <= 0 {
		return fmt.Errorf("drift: policy window %d must be positive", p.Window)
	}
	if p.MAPEThreshold <= 0 {
		return fmt.Errorf("drift: policy MAPE threshold %v must be positive", p.MAPEThreshold)
	}
	if p.SignRun <= 1 {
		return fmt.Errorf("drift: policy sign run %d must exceed 1", p.SignRun)
	}
	if p.SignRun > p.Window {
		return fmt.Errorf("drift: policy sign run %d exceeds window %d", p.SignRun, p.Window)
	}
	return nil
}

// Verdict is the outcome of one drift evaluation.
type Verdict struct {
	// WindowFill is how many residuals the window held.
	WindowFill int `json:"window_fill"`
	// MAPE is the windowed mean absolute relative residual.
	MAPE float64 `json:"mape"`
	// MaxSignRun is the longest same-sign residual run in the window.
	MaxSignRun int `json:"max_sign_run"`
	// Drifted reports whether either statistic crossed its threshold
	// over a full window.
	Drifted bool `json:"drifted"`
	// Reason names the tripped statistic ("mape", "sign-run", or both
	// as "mape+sign-run"); empty when not drifted.
	Reason string `json:"reason,omitempty"`
}

// Evaluate judges the accumulator's residual window against the
// policy. The accumulator's window capacity must already be the
// policy's Window (the calibration loop sets it when it adopts a
// model).
func Evaluate(p Policy, s *regress.SuffStats) Verdict {
	v := Verdict{
		WindowFill: s.WindowFill(),
		MAPE:       s.WindowMAPE(),
		MaxSignRun: s.WindowMaxSignRun(),
	}
	if v.WindowFill < p.Window {
		return v
	}
	mape := v.MAPE > p.MAPEThreshold
	run := v.MaxSignRun >= p.SignRun
	switch {
	case mape && run:
		v.Drifted, v.Reason = true, "mape+sign-run"
	case mape:
		v.Drifted, v.Reason = true, "mape"
	case run:
		v.Drifted, v.Reason = true, "sign-run"
	}
	return v
}
