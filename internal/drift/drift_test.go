package drift

import (
	"strings"
	"testing"

	"ceer/internal/regress"
)

func newStats(t *testing.T, window int) *regress.SuffStats {
	t.Helper()
	s, err := regress.NewSuffStats(1, 1, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	s.SetResidualWindowCap(window)
	return s
}

func TestPolicyValidate(t *testing.T) {
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
	cases := []struct {
		name string
		p    Policy
		want string
	}{
		{"zero window", Policy{Window: 0, MAPEThreshold: 0.2, SignRun: 4}, "window"},
		{"zero mape", Policy{Window: 8, MAPEThreshold: 0, SignRun: 4}, "MAPE threshold"},
		{"unit sign run", Policy{Window: 8, MAPEThreshold: 0.2, SignRun: 1}, "exceed 1"},
		{"run over window", Policy{Window: 8, MAPEThreshold: 0.2, SignRun: 9}, "exceeds window"},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestEvaluateColdWindow pins that a partially filled window never
// drifts, no matter how bad the residuals look.
func TestEvaluateColdWindow(t *testing.T) {
	p := Policy{Window: 8, MAPEThreshold: 0.1, SignRun: 3}
	s := newStats(t, p.Window)
	for i := 0; i < p.Window-1; i++ {
		s.AddResidual(3.0, 1.0) // +200% residual, every time
	}
	v := Evaluate(p, s)
	if v.Drifted {
		t.Errorf("cold window drifted: %+v", v)
	}
	if v.WindowFill != p.Window-1 {
		t.Errorf("WindowFill = %d, want %d", v.WindowFill, p.Window-1)
	}
}

// TestEvaluateMAPE trips the loud-error statistic: residuals that
// alternate sign (no run) but are huge.
func TestEvaluateMAPE(t *testing.T) {
	p := Policy{Window: 8, MAPEThreshold: 0.25, SignRun: 5}
	s := newStats(t, p.Window)
	for i := 0; i < p.Window; i++ {
		if i%2 == 0 {
			s.AddResidual(2.0, 1.0) // +100%
		} else {
			s.AddResidual(0.5, 1.0) // -50%
		}
	}
	v := Evaluate(p, s)
	if !v.Drifted || v.Reason != "mape" {
		t.Errorf("Evaluate = %+v, want drifted via mape", v)
	}
}

// TestEvaluateSignRun trips the quiet-bias statistic: residuals small
// in magnitude but all one-sided.
func TestEvaluateSignRun(t *testing.T) {
	p := Policy{Window: 8, MAPEThreshold: 0.25, SignRun: 6}
	s := newStats(t, p.Window)
	for i := 0; i < p.Window; i++ {
		s.AddResidual(1.05, 1.0) // +5%, consistently
	}
	v := Evaluate(p, s)
	if !v.Drifted || v.Reason != "sign-run" {
		t.Errorf("Evaluate = %+v, want drifted via sign-run", v)
	}
	if v.MaxSignRun != p.Window {
		t.Errorf("MaxSignRun = %d, want %d", v.MaxSignRun, p.Window)
	}
}

// TestEvaluateBoth reports the combined reason when both statistics
// trip at once.
func TestEvaluateBoth(t *testing.T) {
	p := Policy{Window: 4, MAPEThreshold: 0.25, SignRun: 4}
	s := newStats(t, p.Window)
	for i := 0; i < p.Window; i++ {
		s.AddResidual(2.0, 1.0)
	}
	v := Evaluate(p, s)
	if !v.Drifted || v.Reason != "mape+sign-run" {
		t.Errorf("Evaluate = %+v, want drifted via mape+sign-run", v)
	}
}

// TestEvaluateHealthy stays quiet on alternating small residuals.
func TestEvaluateHealthy(t *testing.T) {
	p := Policy{Window: 8, MAPEThreshold: 0.25, SignRun: 4}
	s := newStats(t, p.Window)
	for i := 0; i < 3*p.Window; i++ {
		if i%2 == 0 {
			s.AddResidual(1.02, 1.0)
		} else {
			s.AddResidual(0.97, 1.0)
		}
	}
	v := Evaluate(p, s)
	if v.Drifted || v.Reason != "" {
		t.Errorf("healthy residuals drifted: %+v", v)
	}
}

// TestEvaluateDeterministic pins that evaluation is a pure function of
// the accumulator state: same residuals, same verdict, every time.
func TestEvaluateDeterministic(t *testing.T) {
	p := DefaultPolicy()
	build := func() *regress.SuffStats {
		s := newStats(t, p.Window)
		for i := 0; i < 2*p.Window; i++ {
			s.AddResidual(1.0+float64(i%7)*0.1, 1.0)
		}
		return s
	}
	a, b := Evaluate(p, build()), Evaluate(p, build())
	if a != b {
		t.Errorf("verdicts diverge: %+v vs %+v", a, b)
	}
}
