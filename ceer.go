// Package ceer is the public API of this repository: a from-scratch Go
// reproduction of "Empirical Analysis and Modeling of Compute Times of
// CNN Operations on AWS Cloud" (Hafeez & Gandhi, IISWC 2020).
//
// Ceer predicts the training time and rental cost of a CNN on each of
// AWS's GPU instance families (P3/V100, P2/K80, G4/T4, G3/M60) and
// recommends the configuration minimizing a user objective. The
// pipeline mirrors the paper:
//
//  1. Profile the 8 training-set CNNs op-by-op on every GPU model
//     (here: against the repository's calibrated hardware simulator —
//     see DESIGN.md for the substitution rationale).
//  2. Classify operation types empirically into heavy / light / CPU.
//  3. Fit one input-size regression per (GPU, heavy op), medians for
//     light and CPU ops, and a per-(GPU, #GPUs) linear model of the
//     data-parallel communication overhead versus parameter count.
//  4. Predict per Eq. (2): T = (S_GPU(CNN) + Σ t_op(input)) · D/(k·B),
//     C = T · hourly price; recommend argmin Obj(T, C).
//
// Basic use:
//
//	sys, err := ceer.Train(ceer.TrainOptions{Seed: 1})
//	g, err := ceer.BuildModel("inception-v3", 32)
//	rec, err := sys.Recommend(g, ceer.ImageNet, ceer.OnDemand,
//	    ceer.AllConfigs(4), ceer.MinimizeCost)
//	fmt.Println(rec.Best.Cfg, rec.Best.CostUSD)
package ceer

import (
	"context"
	"fmt"
	"io"
	"sync"

	internal "ceer/internal/ceer"
	"ceer/internal/cloud"
	"ceer/internal/dataset"
	"ceer/internal/drift"
	"ceer/internal/faults"
	"ceer/internal/gpu"
	"ceer/internal/graph"
	"ceer/internal/nn"
	"ceer/internal/sim"
	"ceer/internal/tensor"
	"ceer/internal/trace"
	"ceer/internal/zoo"
)

// Re-exported core types. Aliases keep the public surface thin while
// documentation and behaviour live with the implementations.
type (
	// Graph is a CNN training-iteration DAG (op-level, forward +
	// backward + optimizer update + input pipeline).
	Graph = graph.Graph
	// GraphBuilder builds custom CNN graphs layer by layer.
	GraphBuilder = nn.Builder
	// Dataset describes a training set (only the sample count enters
	// the time model).
	Dataset = dataset.Dataset
	// InstanceConfig is a deployable (GPU model, GPU count) choice.
	InstanceConfig = cloud.Config
	// Pricing selects On-Demand or market-ratio price tables.
	Pricing = cloud.Pricing
	// GPUModel is the stable string ID of a registered GPU device.
	GPUModel = gpu.ID
	// Prediction is a training-time and cost prediction for one
	// configuration.
	Prediction = internal.Prediction
	// IterPrediction decomposes a predicted per-iteration training time.
	IterPrediction = internal.IterPrediction
	// Recommendation is the outcome of a recommender run.
	Recommendation = internal.Recommendation
	// Candidate pairs a configuration with its prediction, feasibility,
	// and objective score inside a Recommendation.
	Candidate = internal.Candidate
	// Explanation attributes a predicted iteration to operation types
	// (see Predictor.ExplainIteration).
	Explanation = internal.Explanation
	// Objective scores (training seconds, cost USD); lower is better.
	Objective = internal.Objective
	// Constraint filters candidate configurations (budget caps).
	Constraint = internal.Constraint
	// Measurement is one simulated "observed" training run.
	Measurement = sim.Measurement
	// Variant selects predictor ablations (Full, NoComm, ...).
	Variant = internal.Variant
	// Padding selects SAME/VALID window semantics for GraphBuilder
	// convolutions and pooling.
	Padding = tensor.Padding
	// FaultSpec declares deterministic faults to inject into the
	// measurement campaign (chaos testing; see internal/faults).
	FaultSpec = faults.Spec
	// Coverage summarizes how completely a campaign measured its cells.
	Coverage = internal.Coverage
	// PersistError is the typed failure of loading a saved predictor.
	PersistError = internal.PersistError
	// CompiledSystem is a compiled serving core: the full per-(device,
	// signature-class) prediction table evaluated ahead of time, so
	// predictions and recommendations over the compiled zoo are pure
	// table gathers — lock-free, allocation-free, safe for concurrent
	// readers. Obtain one from System.Compiled.
	CompiledSystem = internal.CompiledPredictor
	// CompiledBox atomically publishes a CompiledSystem for hot-swap in
	// serving loops.
	CompiledBox = internal.CompiledBox
	// Obs is one observed op timing — the record type of JSONL
	// observation logs (see System.WriteObsLog and Calibrator.Replay).
	Obs = trace.Obs
	// Calibrator drives the observe→predict→calibrate loop over a
	// trained system; obtain one from System.NewCalibrator.
	Calibrator = internal.Calibrator
	// CalibrationPolicy fixes the calibration loop's drift thresholds
	// and refit schedule.
	CalibrationPolicy = internal.CalibrationPolicy
	// CalibrationReport is the structured outcome of a calibration run.
	CalibrationReport = internal.CalibrationReport
	// DriftPolicy fixes the windowed drift-detection thresholds.
	DriftPolicy = drift.Policy
	// FaultInjector evaluates a FaultSpec deterministically; build one
	// with NewFaultInjector to fault-inject a calibration replay.
	FaultInjector = faults.Injector
)

// ErrNotCompiled reports a prediction against a graph or device outside
// a CompiledSystem's compiled set (check with errors.Is; fall back to
// the uncompiled System methods).
var ErrNotCompiled = internal.ErrNotCompiled

// Sentinel causes carried inside a PersistError (check with errors.Is)
// so reload paths can report why a model file was rejected: a stale
// on-disk format vs a device missing from this process's registry vs
// plain corruption (neither sentinel matches).
var (
	// ErrUnsupportedVersion: the file declares a persist version this
	// build does not understand.
	ErrUnsupportedVersion = internal.ErrUnsupportedVersion
	// ErrUnknownDevice: the file references an unregistered device ID.
	ErrUnknownDevice = internal.ErrUnknownDevice
)

// LoadFaultSpec reads a JSON fault specification from a file.
func LoadFaultSpec(path string) (*FaultSpec, error) { return faults.LoadSpec(path) }

// NewFaultInjector compiles a fault spec into a deterministic injector
// (nil spec = inject nothing).
func NewFaultInjector(spec *FaultSpec) (*FaultInjector, error) { return faults.NewInjector(spec) }

// DefaultCalibrationPolicy pairs the default drift thresholds with
// drift-triggered refits only.
func DefaultCalibrationPolicy() CalibrationPolicy { return internal.DefaultCalibrationPolicy() }

// DefaultDriftPolicy returns the standard drift thresholds (24-wide
// window, 25% MAPE, 12 same-signed residuals).
func DefaultDriftPolicy() DriftPolicy { return drift.DefaultPolicy() }

// Window padding policies for GraphBuilder layers.
const (
	// SamePadding pads so stride-1 windows preserve spatial size.
	SamePadding = tensor.Same
	// ValidPadding applies no padding.
	ValidPadding = tensor.Valid
)

// Pricing schemes.
const (
	// OnDemand uses AWS's published On-Demand prices.
	OnDemand = cloud.OnDemand
	// MarketRatio re-prices instances by commodity GPU market ratios
	// (the paper's Figure 12 scenario).
	MarketRatio = cloud.MarketRatio
)

// GPU models.
const (
	V100 = gpu.V100
	K80  = gpu.K80
	T4   = gpu.T4
	M60  = gpu.M60
)

// Predictor ablation variants (Section IV analyses).
const (
	Full            = internal.Full
	NoComm          = internal.NoComm
	HeavyOnly       = internal.HeavyOnly
	HeavyOnlyNoComm = internal.HeavyOnlyNoComm
)

// Built-in datasets.
var (
	// ImageNet is the 1.2M-sample ILSVRC-2012 training set.
	ImageNet = dataset.ImageNet
	// ImageNetSubset6400 is the paper's Figure 6 subset.
	ImageNetSubset6400 = dataset.ImageNetSubset6400
)

// Objectives.
var (
	// MinimizeTime optimizes pure training time.
	MinimizeTime = internal.MinimizeTime
	// MinimizeCost optimizes pure rental cost.
	MinimizeCost = internal.MinimizeCost
)

// MaxHourlyBudget rejects configurations costing more than usdPerHour
// (+slack) to rent.
func MaxHourlyBudget(usdPerHour, slack float64) Constraint {
	return internal.MaxHourlyBudget(usdPerHour, slack)
}

// MaxTotalBudget rejects configurations whose predicted training cost
// exceeds usd.
func MaxTotalBudget(usd float64) Constraint { return internal.MaxTotalBudget(usd) }

// FitsGPUMemory rejects configurations whose per-GPU training footprint
// (weights, optimizer state, retained activations) exceeds the GPU's
// memory — an 8 GB M60 cannot train what a 16 GB V100 can at the same
// batch size.
func FitsGPUMemory(g *Graph) Constraint { return internal.FitsGPUMemory(g) }

// EstimateMemoryGB returns the estimated per-GPU training footprint of
// a graph, in gigabytes.
func EstimateMemoryGB(g *Graph) float64 { return g.EstimateMemory().TotalGB() }

// Models returns the names of the 12 built-in CNN architectures.
func Models() []string { return zoo.Names() }

// TrainingModels returns the paper's 8 training-set CNNs.
func TrainingModels() []string { return zoo.TrainingSet() }

// TestModels returns the paper's 4 held-out CNNs.
func TestModels() []string { return zoo.TestSet() }

// BuildModel constructs a built-in CNN's training graph at the given
// per-GPU batch size (the paper default is 32). Each call builds a
// fresh graph; use BuildModelCached when the same architecture is
// consumed repeatedly (serving loops, device sweeps).
func BuildModel(name string, batch int64) (*Graph, error) { return zoo.Build(name, batch) }

// zooCache memoizes built-in zoo graphs process-wide: graphs are
// immutable once built, so a CLI (or server) that trains in memory and
// then predicts or recommends constructs each architecture exactly
// once, however many devices and GPU counts it sweeps.
var zooCache = graph.NewBuildCache(zoo.Build)

// BuildModelCached returns the shared, memoized build of a built-in CNN
// at the given batch size. The returned graph is shared — treat it as
// read-only (all ceer APIs do).
func BuildModelCached(name string, batch int64) (*Graph, error) { return zooCache.Build(name, batch) }

// NewGraphBuilder starts a custom CNN definition; see nn.Builder's
// layer methods (Conv, BatchNorm, ReLU, MaxPool, Dense, Concat, Add,
// SoftmaxLoss, ...).
func NewGraphBuilder(name string, batch int64) *GraphBuilder { return nn.NewBuilder(name, batch) }

// AllConfigs enumerates every candidate (GPU model, k) configuration
// with 1..maxK GPUs per family.
func AllConfigs(maxK int) []InstanceConfig { return cloud.Configs(maxK) }

// NewDataset describes a custom dataset by sample count.
func NewDataset(name string, samples int64) Dataset {
	return Dataset{Name: name, Samples: samples}
}

// TrainOptions configures the measurement-and-fit campaign.
type TrainOptions struct {
	// Seed drives the simulated measurement noise (deterministic).
	Seed uint64
	// ProfileIterations is the op-level profiling depth per (CNN, GPU);
	// 0 selects the default (200; the paper profiles 1,000).
	ProfileIterations int
	// CommIterations is the iteration sample per communication
	// observation; 0 selects the default (30).
	CommIterations int
	// Workers bounds the measurement campaign's parallelism across
	// independent (CNN, GPU, k) tasks: 0 selects GOMAXPROCS, 1 forces
	// the serial path. Any worker count yields an identically trained
	// system (the campaign is deterministic per (seed, CNN, GPU, node)).
	Workers int
	// Retries is the per-cell retry budget for transient campaign
	// faults (0 = single attempt per cell).
	Retries int
	// Faults optionally injects deterministic faults into the campaign
	// (nil = fault-free). With faults enabled the campaign completes
	// with partial coverage instead of failing: uncovered cells are
	// reported via System.Coverage and affected devices flagged
	// degraded.
	Faults *FaultSpec
	// Checkpoint, when non-empty, journals campaign progress to the
	// named file so a preempted run resumes without re-measuring
	// completed cells.
	Checkpoint string
}

// System is a trained Ceer instance plus the profiling corpus it was
// trained on.
type System struct {
	pred     *internal.Predictor
	bundle   *trace.Bundle
	coverage Coverage

	// compiledMu guards compiled, the per-batch-size cache of compiled
	// zoo-wide serving tables (see Compiled).
	compiledMu sync.Mutex
	compiled   map[int64]*CompiledSystem
}

// Train runs the full paper pipeline: profile the 8 training-set CNNs
// on all four GPU models, collect multi-GPU communication observations,
// and fit every Ceer model. It is TrainContext without a deadline.
func Train(opts TrainOptions) (*System, error) {
	return TrainContext(context.Background(), opts)
}

// TrainContext is Train bounded by a context: a deadline or
// cancellation interrupts the measurement campaign promptly (mid-cell,
// between iterations).
func TrainContext(ctx context.Context, opts TrainOptions) (*System, error) {
	pl := internal.DefaultPipeline(opts.Seed)
	if opts.ProfileIterations > 0 {
		pl.ProfileIterations = opts.ProfileIterations
	}
	if opts.CommIterations > 0 {
		pl.CommIterations = opts.CommIterations
	}
	pl.Workers = opts.Workers
	pl.CheckpointPath = opts.Checkpoint
	if opts.Retries > 0 || opts.Faults != nil {
		pl.Retry = internal.DefaultRetryPolicy(opts.Seed, opts.Retries)
	}
	inj, err := faults.NewInjector(opts.Faults)
	if err != nil {
		return nil, err
	}
	pl.Faults = inj
	pred, res, err := pl.TrainOn(ctx, zooCache.Build, zoo.TrainingSet())
	if err != nil {
		return nil, err
	}
	return &System{pred: pred, bundle: res.Bundle, coverage: res.Coverage}, nil
}

// Coverage reports how completely the training campaign measured its
// cells. A freshly loaded system (Load) reports a zero Coverage.
func (s *System) Coverage() Coverage { return s.coverage }

// DegradedDevices lists devices whose models were fit on incomplete
// campaign coverage, sorted by ID.
func (s *System) DegradedDevices() []GPUModel { return s.pred.DegradedDevices() }

// Predictor exposes the underlying trained predictor for advanced use
// (op-model inspection, ablation variants).
func (s *System) Predictor() *internal.Predictor { return s.pred }

// Save serializes the trained models as JSON, so a system can be
// trained once and reloaded without re-profiling.
func (s *System) Save(w io.Writer) error { return s.pred.Save(w) }

// Load restores a System from JSON written by Save. The restored
// system predicts and recommends identically; it carries no profiling
// corpus.
func Load(r io.Reader) (*System, error) {
	pred, err := internal.Load(r)
	if err != nil {
		return nil, err
	}
	return &System{pred: pred}, nil
}

// LoadFile is Load from a file path. Failures carry the path and the
// file's format version via *PersistError (errors.As).
func LoadFile(path string) (*System, error) {
	pred, err := internal.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &System{pred: pred}, nil
}

// PredictTraining predicts the end-to-end training time and cost of one
// epoch of ds on cfg.
func (s *System) PredictTraining(g *Graph, cfg InstanceConfig, ds Dataset, p Pricing) (Prediction, error) {
	return s.pred.PredictTraining(g, cfg, ds, p)
}

// PredictTrainingVariant is PredictTraining under an ablation variant.
func (s *System) PredictTrainingVariant(g *Graph, cfg InstanceConfig, ds Dataset, p Pricing, v Variant) (Prediction, error) {
	return s.pred.PredictTrainingVariant(g, cfg, ds, p, v)
}

// Recommend evaluates the candidates and returns the feasible one
// minimizing the objective, plus every candidate's prediction.
func (s *System) Recommend(g *Graph, ds Dataset, p Pricing, candidates []InstanceConfig,
	obj Objective, constraints ...Constraint) (Recommendation, error) {
	return s.pred.Recommend(g, ds, p, candidates, obj, constraints...)
}

// Compiled returns the system's compiled serving core for the built-in
// zoo at the given per-GPU batch size (0 selects the paper default,
// 32): every (device, signature class) prediction is evaluated once up
// front into immutable flat tables, so subsequent predictions and
// recommendations over zoo graphs are lock-free table gathers. The
// result is cached per batch size and safe for concurrent use; graphs
// must come from BuildModelCached (the compiled set is keyed by graph
// identity). For graphs outside the zoo, use the System methods
// directly (or check for ErrNotCompiled and fall back).
func (s *System) Compiled(batch int64) (*CompiledSystem, error) {
	if batch == 0 {
		batch = zoo.DefaultBatch
	}
	s.compiledMu.Lock()
	defer s.compiledMu.Unlock()
	if c, ok := s.compiled[batch]; ok {
		return c, nil
	}
	names := zoo.Names()
	graphs := make([]*Graph, 0, len(names))
	for _, name := range names {
		g, err := zooCache.Build(name, batch)
		if err != nil {
			return nil, err
		}
		graphs = append(graphs, g)
	}
	c, err := internal.Compile(s.pred, graphs)
	if err != nil {
		return nil, err
	}
	if s.compiled == nil {
		s.compiled = make(map[int64]*CompiledSystem)
	}
	s.compiled[batch] = c
	return c, nil
}

// WriteObsLog streams the training campaign's op-level observations to
// w as JSONL — the replayable record a calibration run consumes. Only
// a freshly trained system carries the corpus; a system restored by
// Load has none and returns an error.
func (s *System) WriteObsLog(w io.Writer) error {
	if s.bundle == nil {
		return fmt.Errorf("ceer: system carries no profiling corpus (loaded, not trained)")
	}
	return trace.WriteObsLog(w, s.bundle)
}

// NewCalibrator wraps the system's predictor in an
// observe→predict→calibrate loop: stream observations through
// Calibrator.Calibrate (or replay a log with Calibrator.Replay) and it
// folds each into per-(device, op) sufficient statistics, detects
// drift, and refits drifted models copy-on-write. The system's own
// predictor is never mutated; adopt the recalibrated one with
// AdoptCalibrated, or bind a CompiledBox for lock-free hot-swap.
func (s *System) NewCalibrator(pol CalibrationPolicy) (*Calibrator, error) {
	return internal.NewCalibrator(s.pred, pol)
}

// AdoptCalibrated installs the calibrator's latest recalibrated
// predictor as this system's serving predictor and drops the compiled
// cache (its tables were built from the old models). Not safe
// concurrently with predictions — serving loops should publish through
// a CompiledBox via Calibrator.BindBox instead.
func (s *System) AdoptCalibrated(c *Calibrator) {
	s.compiledMu.Lock()
	defer s.compiledMu.Unlock()
	s.pred = c.Predictor()
	s.compiled = nil
}

// HeavyOps returns the operation types Ceer classified as heavy (the
// paper's Figure 2 set).
func (s *System) HeavyOps() []string {
	types := s.pred.Class.HeavyTypes()
	out := make([]string, len(types))
	for i, t := range types {
		out[i] = string(t)
	}
	return out
}

// Observe runs a simulated "ground truth" training measurement — the
// stand-in for actually renting the instance (see DESIGN.md). Useful
// for validating predictions in examples and experiments.
func Observe(g *Graph, cfg InstanceConfig, ds Dataset, measureIters int, seed uint64) (Measurement, error) {
	return sim.Train(context.Background(), g, cfg, ds, measureIters, seed)
}

// HourlyCost returns the rental price of a configuration under a
// pricing scheme.
func HourlyCost(cfg InstanceConfig, p Pricing) (float64, error) { return cfg.HourlyCost(p) }

// InstanceName returns the closest AWS instance name of a
// configuration (e.g. "p3.8xlarge").
func InstanceName(cfg InstanceConfig) string { return cfg.InstanceName() }

// Config builds an InstanceConfig from a family code ("P3", "P2",
// "G4", "G3") and GPU count.
func Config(family string, k int) (InstanceConfig, error) {
	m, ok := gpu.ByFamily(family)
	if !ok {
		return InstanceConfig{}, fmt.Errorf("ceer: unknown GPU family %q", family)
	}
	cfg := InstanceConfig{GPU: m, K: k}
	if !cfg.Valid() {
		return InstanceConfig{}, fmt.Errorf("ceer: invalid configuration %dx%s", k, family)
	}
	return cfg, nil
}
