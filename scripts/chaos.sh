#!/usr/bin/env bash
# Chaos gate: the resilient campaign must be deterministic under
# injected faults. Trains the CLI predictor twice under the canned 10%
# transient-fault spec (scripts/chaos-spec.json) — serial, then at
# GOMAXPROCS workers — and requires the two model files to be
# byte-for-byte identical. A third, fault-free run must also match the
# serial faulted run: transient faults that retries fully absorb leave
# no trace in the trained models.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

echo "== building ceer"
go build -o "${workdir}/ceer" ./cmd/ceer

echo "== chaos run 1: serial, 10% transient faults, 3 retries"
"${workdir}/ceer" train -seed 1 -workers 1 -retries 3 \
    -fault-spec scripts/chaos-spec.json -out "${workdir}/models_serial.json" 2>/dev/null

echo "== chaos run 2: parallel, same spec and seed"
"${workdir}/ceer" train -seed 1 -workers 0 -retries 3 \
    -fault-spec scripts/chaos-spec.json -out "${workdir}/models_parallel.json" 2>/dev/null

echo "== diff: serial vs parallel under chaos"
diff "${workdir}/models_serial.json" "${workdir}/models_parallel.json"

echo "== fault-free reference run"
"${workdir}/ceer" train -seed 1 -out "${workdir}/models_clean.json" 2>/dev/null

echo "== diff: chaos vs fault-free"
diff "${workdir}/models_serial.json" "${workdir}/models_clean.json"

echo "chaos: OK (faulted campaigns are byte-reproducible and leave no residue)"
