#!/usr/bin/env bash
# End-to-end smoke test of the serving daemon (`ceer serve`): boots the
# daemon on an ephemeral port against a freshly trained model file,
# hits every endpoint, byte-compares the daemon's /v1/predict body with
# `ceer predict -json` for the same query (the CLI renders through the
# daemon's own encoder, so any divergence is a bug), exercises the
# hot-reload admin endpoint, and drains with SIGTERM.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
cleanup() {
    if [[ -n "${srv_pid:-}" ]] && kill -0 "${srv_pid}" 2>/dev/null; then
        kill -9 "${srv_pid}" 2>/dev/null || true
    fi
    rm -rf "${tmp}"
}
trap cleanup EXIT

echo "== serve smoke: build"
go build -o "${tmp}/ceer" ./cmd/ceer

echo "== serve smoke: train"
"${tmp}/ceer" train -out "${tmp}/models.json" -iters 25 -seed 1 >/dev/null

echo "== serve smoke: boot"
"${tmp}/ceer" serve -models "${tmp}/models.json" -addr 127.0.0.1:0 -warmup \
    >"${tmp}/serve.log" 2>&1 &
srv_pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^ceer serve: listening on \([^ ]*\).*/\1/p' "${tmp}/serve.log")
    [[ -n "${addr}" ]] && break
    if ! kill -0 "${srv_pid}" 2>/dev/null; then
        echo "serve smoke FAILED: daemon exited during startup" >&2
        cat "${tmp}/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [[ -z "${addr}" ]]; then
    echo "serve smoke FAILED: daemon never reported its address" >&2
    cat "${tmp}/serve.log" >&2
    exit 1
fi
base="http://${addr}"
echo "   daemon at ${base}"

fetch() { # fetch <path-with-query> <outfile>
    curl -fsS --max-time 10 "${base}$1" -o "$2"
}

echo "== serve smoke: endpoints"
fetch "/healthz" "${tmp}/healthz.json"
grep -q '"status": *"healthy"' "${tmp}/healthz.json"

fetch "/v1/predict?model=resnet-50&config=2xP3" "${tmp}/predict.json"
grep -q '"predictions"' "${tmp}/predict.json"

fetch "/v1/recommend?model=resnet-50&objective=cost" "${tmp}/recommend.json"
grep -q '"best"' "${tmp}/recommend.json"

fetch "/v1/explain?model=resnet-50&gpu=v100&k=2" "${tmp}/explain.json"
grep -q '"contributions"' "${tmp}/explain.json"

fetch "/metrics" "${tmp}/metrics.json"
grep -q '"predict"' "${tmp}/metrics.json"

echo "== serve smoke: CLI/daemon byte equivalence"
"${tmp}/ceer" predict -json -models "${tmp}/models.json" \
    -model resnet-50 -config 2xP3 >"${tmp}/predict_cli.json"
if ! cmp -s "${tmp}/predict.json" "${tmp}/predict_cli.json"; then
    echo "serve smoke FAILED: daemon /v1/predict and 'ceer predict -json' diverge" >&2
    diff "${tmp}/predict.json" "${tmp}/predict_cli.json" >&2 || true
    exit 1
fi

echo "== serve smoke: rejected reload keeps the old generation"
cp "${tmp}/models.json" "${tmp}/models.good.json"
echo '{torn mid-write' >"${tmp}/models.json"
code=$(curl -sS --max-time 30 -X POST "${base}/admin/reload" \
    -o "${tmp}/reload_rejected.json" -w '%{http_code}')
if [[ "${code}" != "422" ]]; then
    echo "serve smoke FAILED: reload of a corrupt file answered ${code}, want 422" >&2
    cat "${tmp}/reload_rejected.json" >&2
    exit 1
fi
grep -q '"status": *"rejected"' "${tmp}/reload_rejected.json"
grep -q '"cause"' "${tmp}/reload_rejected.json"
fetch "/v1/predict?model=resnet-50&config=2xP3" "${tmp}/predict_rejected.json"
cmp -s "${tmp}/predict.json" "${tmp}/predict_rejected.json" || {
    echo "serve smoke FAILED: prediction changed after a rejected reload" >&2
    exit 1
}
fetch "/healthz" "${tmp}/healthz_rejected.json"
grep -q '"status": *"healthy"' "${tmp}/healthz_rejected.json"
cp "${tmp}/models.good.json" "${tmp}/models.json"

echo "== serve smoke: hot reload"
curl -fsS --max-time 10 -X POST "${base}/admin/reload" -o "${tmp}/reload.json"
grep -q '"generation": *1' "${tmp}/reload.json"
fetch "/v1/predict?model=resnet-50&config=2xP3" "${tmp}/predict_after.json"
cmp -s "${tmp}/predict.json" "${tmp}/predict_after.json" || {
    echo "serve smoke FAILED: prediction changed after reloading identical models" >&2
    exit 1
}

echo "== serve smoke: graceful drain"
kill -TERM "${srv_pid}"
for _ in $(seq 1 100); do
    kill -0 "${srv_pid}" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "${srv_pid}" 2>/dev/null; then
    echo "serve smoke FAILED: daemon did not drain within 10s" >&2
    exit 1
fi
wait "${srv_pid}" 2>/dev/null || true
grep -q "drained, bye" "${tmp}/serve.log"

echo "serve smoke: OK"
