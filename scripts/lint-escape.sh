#!/usr/bin/env bash
# Escape-analysis cross-check for the hot-path allocation proof (see
# DESIGN.md §10). ceer-lint's allocfree analyzer proves allocation
# freedom from the AST up; this script asks the compiler to prove it
# from the other side: build the serving-path packages with
# -gcflags=-m and feed the escape diagnostics back through
# `ceer-lint -escape-log`, which flags any "escapes to heap" /
# "moved to heap" landing inside a //hot:path-reachable function.
# //lint:ignore allocfree lines suppress both sides.
#
# Set CEER_SKIP_ESCAPE=1 to skip (e.g. on toolchains whose -m output
# formatting is unvetted).
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${CEER_SKIP_ESCAPE:-0}" == "1" ]]; then
    echo "lint-escape: skipped (CEER_SKIP_ESCAPE=1)"
    exit 0
fi

log="$(mktemp)"
trap 'rm -f "${log}"' EXIT

# -a forces recompilation so the diagnostics are emitted even when the
# build cache is warm; only the packages on the serving path matter.
go build -a -gcflags=-m \
    ./internal/serve ./internal/serve/loadgen ./internal/ceer \
    ./internal/graph ./internal/gpu 2> "${log}" || {
    echo "lint-escape: go build -gcflags=-m failed:" >&2
    cat "${log}" >&2
    exit 1
}

go run ./cmd/ceer-lint -escape-log "${log}"
