#!/usr/bin/env bash
# Serving-path benchmark runner (see DESIGN.md "Serving-path
# performance"): runs the predict/recommend benches with -benchmem and
# writes the headline numbers to BENCH_predict.json.
#
# Environment overrides:
#   BENCH_COUNT    repetitions per bench (default 3; smoke runs use 1)
#   BENCH_TIME     -benchtime value (default 100x; e.g. 2s, 500x)
#   BENCH_OUT      output JSON path (default BENCH_predict.json)
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${BENCH_COUNT:-3}"
TIME="${BENCH_TIME:-100x}"
OUT="${BENCH_OUT:-BENCH_predict.json}"

echo "== serving-path benches (count=${COUNT}, benchtime=${TIME})"
raw=$(go test -run '^$' \
    -bench 'PredictIteration(Folded|Unfolded)|RecommendSweep' \
    -benchmem -count "${COUNT}" -benchtime "${TIME}" . | tee /dev/stderr)

# Fold the repeated runs into one JSON document: ns/op and custom
# metrics are averaged across -count repetitions, B/op and allocs/op
# taken verbatim from the last run (they are deterministic).
echo "${raw}" | awk -v out="${OUT}" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip the GOMAXPROCS suffix
    ns[name] += $3; runs[name]++
    # Fields: name iters ns "ns/op" [value unit]...
    for (i = 5; i < NF; i += 2) {
        v = $i; unit = $(i + 1)
        if (unit == "B/op")           { bop[name] = v }
        else if (unit == "allocs/op") { aop[name] = v }
        else { metric[name "|" unit] += v; mruns[name "|" unit]++ }
    }
    if (!(name in order)) { order[name] = ++n; names[n] = name }
}
END {
    printf "{\n" > out
    for (j = 1; j <= n; j++) {
        name = names[j]
        printf "  \"%s\": {\n", name >> out
        printf "    \"ns_per_op\": %.1f,\n", ns[name] / runs[name] >> out
        printf "    \"bytes_per_op\": %d,\n", bop[name] >> out
        printf "    \"allocs_per_op\": %d", aop[name] >> out
        for (key in metric) {
            split(key, kv, "|")
            if (kv[1] == name) {
                m = kv[2]
                gsub(/[^A-Za-z0-9._-]/, "_", m)
                printf ",\n    \"%s\": %.4f", m, metric[key] / mruns[key] >> out
            }
        }
        printf "\n  }%s\n", (j < n ? "," : "") >> out
    }
    printf "}\n" >> out
}
'
echo "== wrote ${OUT}"
