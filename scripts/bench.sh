#!/usr/bin/env bash
# Serving-path benchmark runner (see DESIGN.md "Serving-path
# performance"): runs the predict/recommend benches with -benchmem,
# writes the headline numbers to BENCH_predict.json, and gates fresh
# results against the committed baseline (fail on a >20% ns/op
# regression or any allocs/op increase).
#
# Environment overrides:
#   BENCH_COUNT     repetitions per bench (default 3; smoke runs use 1)
#   BENCH_TIME      -benchtime value (default 100x; e.g. 2s, 500x)
#   BENCH_PKG       package to benchmark (default .; the serve daemon
#                   suite uses ./internal/serve)
#   BENCH_REGEX     -bench selector (default: the predict/recommend
#                   serving-path benches)
#   BENCH_OUT       output JSON path (default BENCH_predict.json)
#   BENCH_BASELINE  committed baseline to gate against (default
#                   BENCH_predict.json; the gate is skipped when the
#                   baseline is missing or is the output file itself,
#                   i.e. when regenerating the baseline)
#   BENCH_GATE      set to 0 to skip the regression gate
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${BENCH_COUNT:-3}"
TIME="${BENCH_TIME:-100x}"
PKG="${BENCH_PKG:-.}"
REGEX="${BENCH_REGEX:-PredictIteration(Folded|Unfolded|Compiled)|CompileZoo|RecommendSweep}"
OUT="${BENCH_OUT:-BENCH_predict.json}"
BASELINE="${BENCH_BASELINE:-BENCH_predict.json}"
GATE="${BENCH_GATE:-1}"

echo "== serving-path benches (pkg=${PKG}, count=${COUNT}, benchtime=${TIME})"
raw=$(go test -run '^$' \
    -bench "${REGEX}" \
    -benchmem -count "${COUNT}" -benchtime "${TIME}" "${PKG}" | tee /dev/stderr)

# Fold the repeated runs into one JSON document: ns/op and custom
# metrics are averaged across -count repetitions, B/op and allocs/op
# taken verbatim from the last run (they are deterministic).
echo "${raw}" | awk -v out="${OUT}" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip the GOMAXPROCS suffix
    ns[name] += $3; runs[name]++
    # Fields: name iters ns "ns/op" [value unit]...
    for (i = 5; i < NF; i += 2) {
        v = $i; unit = $(i + 1)
        if (unit == "B/op")           { bop[name] = v }
        else if (unit == "allocs/op") { aop[name] = v }
        else { metric[name "|" unit] += v; mruns[name "|" unit]++ }
    }
    if (!(name in order)) { order[name] = ++n; names[n] = name }
}
END {
    printf "{\n" > out
    for (j = 1; j <= n; j++) {
        name = names[j]
        printf "  \"%s\": {\n", name >> out
        printf "    \"ns_per_op\": %.1f,\n", ns[name] / runs[name] >> out
        printf "    \"bytes_per_op\": %d,\n", bop[name] >> out
        printf "    \"allocs_per_op\": %d", aop[name] >> out
        for (key in metric) {
            split(key, kv, "|")
            if (kv[1] == name) {
                m = kv[2]
                gsub(/[^A-Za-z0-9._-]/, "_", m)
                printf ",\n    \"%s\": %.4f", m, metric[key] / mruns[key] >> out
            }
        }
        printf "\n  }%s\n", (j < n ? "," : "") >> out
    }
    printf "}\n" >> out
}
'
echo "== wrote ${OUT}"

# Regression gate: compare the fresh numbers against the committed
# baseline. A benchmark regresses when its ns/op grows by more than 20%
# or its allocs/op grows at all; benchmarks absent from the baseline
# (newly added) pass. Skipped when regenerating the baseline in place.
if [[ "${GATE}" != "1" ]]; then
    echo "== regression gate skipped (BENCH_GATE=${GATE})"
elif [[ ! -f "${BASELINE}" ]]; then
    echo "== regression gate skipped (no baseline ${BASELINE})"
elif [[ "$(cd "$(dirname "${OUT}")" && pwd)/$(basename "${OUT}")" == \
        "$(cd "$(dirname "${BASELINE}")" && pwd)/$(basename "${BASELINE}")" ]]; then
    echo "== regression gate skipped (regenerating baseline ${BASELINE} in place)"
else
    echo "== regression gate: ${OUT} vs baseline ${BASELINE}"
    awk -v fresh="${OUT}" -v base="${BASELINE}" '
    function load(path, ns, aop,    name, key, val) {
        name = ""
        while ((getline line < path) > 0) {
            if (match(line, /^  "[^"]+": \{/)) {
                name = line
                sub(/^  "/, "", name); sub(/": \{.*/, "", name)
            } else if (match(line, /^    "(ns_per_op|allocs_per_op)": /)) {
                key = line
                sub(/^    "/, "", key); sub(/":.*/, "", key)
                val = line
                sub(/^[^:]*: /, "", val); sub(/,$/, "", val)
                if (key == "ns_per_op")     { ns[name]  = val + 0 }
                if (key == "allocs_per_op") { aop[name] = val + 0 }
            }
        }
        close(path)
    }
    BEGIN {
        load(fresh, fns, faop)
        load(base,  bns, baop)
        bad = 0
        for (name in fns) {
            if (!(name in bns)) {
                printf "   new  %-34s %.0f ns/op, %d allocs/op (no baseline)\n", \
                    name, fns[name], faop[name]
                continue
            }
            nsfail = (fns[name] > bns[name] * 1.20)
            aopfail = (faop[name] > baop[name])
            verdict = (nsfail || aopfail) ? "FAIL" : "ok"
            printf "   %-4s %-34s ns/op %.0f -> %.0f (%+.1f%%), allocs/op %d -> %d\n", \
                verdict, name, bns[name], fns[name], \
                (fns[name] / bns[name] - 1) * 100, baop[name], faop[name]
            if (nsfail) {
                printf "        ns/op regressed more than 20%% over the baseline\n"
                bad = 1
            }
            if (aopfail) {
                printf "        allocs/op regressed (any increase fails)\n"
                bad = 1
            }
        }
        exit bad
    }' || { echo "== BENCH REGRESSION: see above (baseline ${BASELINE})"; exit 1; }
    echo "== regression gate passed"
fi
