#!/usr/bin/env bash
# Live-daemon chaos suite for `ceer serve` (DESIGN.md §14): a daemon
# built with -tags chaosserve is subjected to kill -9 mid-calibration,
# journal truncation, corrupt reloads under load, and injected handler
# panics, and must uphold the self-healing contracts:
#
#   1. Crash-safe calibration: a kill -9'd daemon's journal, replayed
#      by a fresh daemon, yields a calibrated predictor byte-identical
#      to an uninterrupted daemon fed the same observations.
#   2. A journal truncated mid-record (torn tail) boots cleanly: the
#      intact prefix replays, the fragment is trimmed and logged.
#   3. Corrupt / stale model files offered while prediction traffic
#      flows are rejected (422, typed cause) with zero 5xx responses
#      and an unchanged generation; the restored good file is accepted.
#   4. Injected handler panics become structured 500s, trip the
#      breaker into "degraded" (still serving), and panic-free time
#      heals the daemon back to "healthy".
#
# The zero-allocation pins for /v1/predict//v1/recommend are gated
# separately against BENCH_serve.json by scripts/check.sh — this
# script proves behaviour under faults, that gate proves the hot path
# stayed allocation-free with the recovery boundary installed.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
srv_pid=""
cleanup() {
    if [[ -n "${srv_pid}" ]] && kill -0 "${srv_pid}" 2>/dev/null; then
        kill -9 "${srv_pid}" 2>/dev/null || true
    fi
    rm -rf "${tmp}"
}
trap cleanup EXIT

echo "== chaos serve: build (-tags chaosserve)"
go build -tags chaosserve -o "${tmp}/ceer" ./cmd/ceer
# The tag-gated in-process injection test (invisible to plain
# `go test ./...`).
go test -tags chaosserve -count=1 -run TestChaosServe ./internal/serve >/dev/null

echo "== chaos serve: train (with observation log)"
"${tmp}/ceer" train -out "${tmp}/models.json" -obs-log "${tmp}/obs.jsonl" \
    -iters 25 -seed 1 >/dev/null
# A moderate observation batch is plenty; cap the stream so the suite
# stays fast.
head -n 2000 "${tmp}/obs.jsonl" >"${tmp}/batch.jsonl"

# boot <name> <extra flags...>: start a daemon, wait for its address in
# $base, record its pid in $srv_pid and log in $tmp/<name>.log.
boot() {
    local name=$1
    shift
    "${tmp}/ceer" serve -models "${tmp}/models.json" -addr 127.0.0.1:0 "$@" \
        >"${tmp}/${name}.log" 2>&1 &
    srv_pid=$!
    disown "${srv_pid}" # no job-control "Killed" noise when we kill -9 it
    base=""
    for _ in $(seq 1 200); do
        local addr
        addr=$(sed -n 's/^ceer serve: listening on \([^ ]*\).*/\1/p' "${tmp}/${name}.log")
        if [[ -n "${addr}" ]]; then
            base="http://${addr}"
            return 0
        fi
        if ! kill -0 "${srv_pid}" 2>/dev/null; then
            echo "chaos serve FAILED: ${name} exited during startup" >&2
            cat "${tmp}/${name}.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    echo "chaos serve FAILED: ${name} never reported its address" >&2
    exit 1
}

# reap: wait (by polling — the pid is disowned) until the current
# daemon is gone.
reap() {
    for _ in $(seq 1 200); do
        kill -0 "${srv_pid}" 2>/dev/null || { srv_pid=""; return 0; }
        sleep 0.1
    done
    echo "chaos serve FAILED: daemon did not exit" >&2
    exit 1
}

# drain: SIGTERM the current daemon and wait for a clean exit.
drain() {
    kill -TERM "${srv_pid}"
    reap
}

# crash: kill -9 the current daemon, no warning, no flush.
crash() {
    kill -9 "${srv_pid}"
    reap
}

echo "== chaos serve: kill -9 mid-calibration, replay to byte-identical state"
# Uninterrupted control run: feed the batch, drain cleanly, save the
# calibrated predictor.
boot control -observe-journal "${tmp}/control.jsonl" -calib-out "${tmp}/control_calib.json"
curl -fsS --max-time 120 -X POST --data-binary @"${tmp}/batch.jsonl" \
    "${base}/v1/observe" -o "${tmp}/observe_control.json"
grep -q '"status": *"accepted"' "${tmp}/observe_control.json"
drain

# Victim run: feed the same batch, then kill -9 — no close, no final
# flush beyond the per-observation write-ahead contract.
boot victim -observe-journal "${tmp}/victim.jsonl"
curl -fsS --max-time 120 -X POST --data-binary @"${tmp}/batch.jsonl" \
    "${base}/v1/observe" -o "${tmp}/observe_victim.json"
grep -q '"status": *"accepted"' "${tmp}/observe_victim.json"
crash

# Survivor: replay the victim's journal, drain, save — must match the
# control byte for byte.
boot survivor -observe-journal "${tmp}/victim.jsonl" -calib-out "${tmp}/survivor_calib.json"
grep -q "replayed 2000 observations" "${tmp}/survivor.log"
drain
if ! cmp -s "${tmp}/control_calib.json" "${tmp}/survivor_calib.json"; then
    echo "chaos serve FAILED: journal replay diverged from the uninterrupted run" >&2
    exit 1
fi

echo "== chaos serve: torn journal tail boots and is trimmed"
# Cut the journal mid-record: every complete line but the last, plus a
# 20-byte unterminated fragment of the last — a guaranteed torn tail.
head -n -1 "${tmp}/victim.jsonl" >"${tmp}/torn.jsonl"
tail -n 1 "${tmp}/victim.jsonl" | head -c 20 >>"${tmp}/torn.jsonl"
boot torn -observe-journal "${tmp}/torn.jsonl"
grep -q "torn final line" "${tmp}/torn.log"
curl -fsS --max-time 10 "${base}/healthz" -o "${tmp}/torn_healthz.json"
grep -q '"status": *"healthy"' "${tmp}/torn_healthz.json"
# The trimmed journal must accept appends and stay fully parseable:
# feed one more observation, restart over the same journal, and the
# boot log must count every intact line with no replay error.
head -n 1 "${tmp}/batch.jsonl" >"${tmp}/one.jsonl"
curl -fsS --max-time 30 -X POST --data-binary @"${tmp}/one.jsonl" \
    "${base}/v1/observe" >/dev/null
crash
boot torn2 -observe-journal "${tmp}/torn.jsonl"
grep -q "replayed [0-9]* observations$" "${tmp}/torn2.log"
drain

echo "== chaos serve: corrupt and stale reloads under load, zero 5xx"
boot reloads
# Continuous prediction traffic (with the occasional injected panic
# excluded — this phase proves reload isolation, not panic recovery).
: >"${tmp}/traffic_codes"
(
    for _ in $(seq 1 400); do
        curl -sS --max-time 10 -o /dev/null -w '%{http_code}\n' \
            "${base}/v1/predict?model=resnet-50" >>"${tmp}/traffic_codes" || true
    done
) &
traffic_pid=$!
cp "${tmp}/models.json" "${tmp}/models.good.json"
for i in 1 2 3; do
    echo '{torn mid-write' >"${tmp}/models.json"
    code=$(curl -sS --max-time 30 -X POST "${base}/admin/reload" \
        -o "${tmp}/reload_bad_${i}.json" -w '%{http_code}')
    if [[ "${code}" != "422" ]]; then
        echo "chaos serve FAILED: corrupt reload ${i} answered ${code}, want 422" >&2
        exit 1
    fi
    grep -q '"cause"' "${tmp}/reload_bad_${i}.json"
done
cp "${tmp}/models.good.json" "${tmp}/models.json"
curl -fsS --max-time 30 -X POST "${base}/admin/reload" -o "${tmp}/reload_good.json"
grep -q '"status": *"reloaded"' "${tmp}/reload_good.json"
grep -q '"generation": *1' "${tmp}/reload_good.json"
wait "${traffic_pid}"
if grep -qv '^200$' "${tmp}/traffic_codes"; then
    echo "chaos serve FAILED: non-200 prediction responses during reload chaos:" >&2
    sort "${tmp}/traffic_codes" | uniq -c >&2
    exit 1
fi
drain

echo "== chaos serve: injected panics degrade, panic-free time heals"
boot panics -panic-threshold 3 -panic-window 10s -panic-recovery 2s
for i in 1 2 3; do
    code=$(curl -sS --max-time 10 -o /dev/null -w '%{http_code}' \
        "${base}/v1/predict?model=resnet-50&chaos=panic")
    if [[ "${code}" != "500" ]]; then
        echo "chaos serve FAILED: injected panic ${i} answered ${code}, want 500" >&2
        exit 1
    fi
done
curl -fsS --max-time 10 "${base}/healthz" -o "${tmp}/degraded.json"
grep -q '"status": *"degraded"' "${tmp}/degraded.json"
grep -q '"panics": *3' "${tmp}/degraded.json"
# Degraded still serves predictions.
curl -fsS --max-time 10 -o /dev/null "${base}/v1/predict?model=resnet-50"
# Panic-free recovery window heals it.
sleep 2.5
curl -fsS --max-time 10 "${base}/healthz" -o "${tmp}/healed.json"
grep -q '"status": *"healthy"' "${tmp}/healed.json"
drain
grep -q "drained, bye" "${tmp}/panics.log"

echo "chaos serve: OK"
