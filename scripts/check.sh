#!/usr/bin/env bash
# Tier-1+ verification gate (see README "Verification"): vet, build,
# the full test suite, a race-detector pass over the packages that
# exercise the parallel measurement campaign, and a device-genericity
# grep gate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (parallel campaign paths)"
go test -race ./internal/sim ./internal/ceer ./internal/experiments ./internal/devices/...

echo "== device-genericity gate"
# Core packages must stay generic over registered devices: no
# switch/case dispatch on a concrete device identity outside the gpu
# package's own data files. Reading per-device *data* (e.g. a paper
# figure table keyed by gpu.V100 in experiments) is fine; branching
# control flow on a device constant is not.
violations=$(grep -rnE 'case[[:space:]]+(gpu\.)?(V100|K80|T4|M60)\b|switch[[:space:]].*\.GPU[[:space:]]*\{|switch[[:space:]]+(gpu\.)?(m|id|dev)[[:space:]]*\{.*//.*device' \
    internal/ceer internal/sim internal/cloud internal/experiments 2>/dev/null || true)
if [[ -n "${violations}" ]]; then
    echo "device-genericity gate FAILED: core packages switch on a concrete device identity:" >&2
    echo "${violations}" >&2
    exit 1
fi

echo "== serving-path bench smoke run"
# One iteration per bench: proves the benches run and the JSON writer
# works without paying for a full measurement (see scripts/bench.sh).
BENCH_COUNT=1 BENCH_TIME=1x BENCH_OUT="$(mktemp)" ./scripts/bench.sh >/dev/null

echo "check: OK"
