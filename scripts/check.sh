#!/usr/bin/env bash
# Tier-1+ verification gate (see README "Verification"): formatting,
# vet, build, the full test suite, a race-detector pass over the whole
# module, the ceer-lint static-analysis suite, the chaos determinism
# gate, and a bench smoke run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "${unformatted}" ]]; then
    echo "gofmt gate FAILED: files need gofmt -w:" >&2
    echo "${unformatted}" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "== ceer-lint"
# The AST/type-aware invariant suite (internal/lint): device
# genericity in core packages, determinism on the result path, error
# hygiene, and float-comparison discipline. Any diagnostic fails the
# gate; intentional exceptions carry //lint:ignore directives with a
# reason, in the source, where reviewers can see them.
go run ./cmd/ceer-lint

echo "== chaos determinism gate"
# Campaigns under the canned fault spec must be byte-reproducible at
# any worker count and leave no residue in the trained models
# (scripts/chaos.sh).
./scripts/chaos.sh >/dev/null

echo "== serving-path bench smoke run"
# One iteration per bench: proves the benches run and the JSON writer
# works without paying for a full measurement (see scripts/bench.sh).
BENCH_COUNT=1 BENCH_TIME=1x BENCH_OUT="$(mktemp)" ./scripts/bench.sh >/dev/null

echo "check: OK"
