#!/usr/bin/env bash
# Tier-1+ verification gate (see README "Verification"): formatting,
# vet, build, the full test suite, a race-detector pass over the whole
# module, the ceer-lint static-analysis suite, the escape-analysis
# cross-check, the calibration golden gate, the chaos determinism
# gate, and a bench smoke run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "${unformatted}" ]]; then
    echo "gofmt gate FAILED: files need gofmt -w:" >&2
    echo "${unformatted}" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "== ceer-lint"
# The AST/type-aware invariant suite (internal/lint): device
# genericity in core packages, determinism on the result path, error
# hygiene, float-comparison discipline, and the hot-path proof layer
# (allocfree, atomics, hotpath, poolpair over the //hot:path call
# graph). Any diagnostic fails the gate; intentional exceptions carry
# //lint:ignore directives with a reason, in the source, where
# reviewers can see them.
go run ./cmd/ceer-lint

echo "== lint-escape cross-check"
# The compiler's escape analysis replayed against the hot-path call
# graph: any "escapes to heap" inside a //hot:path-reachable function
# fails (scripts/lint-escape.sh; CEER_SKIP_ESCAPE=1 skips).
./scripts/lint-escape.sh >/dev/null

echo "== calibration golden gate"
# The observe→predict→calibrate replay over the committed observation
# fixture must render its drift/refit report byte-identically to
# internal/ceer/testdata/calib_report_golden.txt, and two replays of
# the same log must agree byte-for-byte. Regenerate after intentional
# report changes with:
#   go test ./internal/ceer -run TestCalibrateGoldenReport -update-calib-golden
go test ./internal/ceer -count=1 \
    -run 'TestCalibrateGoldenReport|TestCalibrateDeterministicReplay' >/dev/null

echo "== chaos determinism gate"
# Campaigns under the canned fault spec must be byte-reproducible at
# any worker count and leave no residue in the trained models
# (scripts/chaos.sh).
./scripts/chaos.sh >/dev/null

echo "== live-daemon chaos suite"
# A daemon built with -tags chaosserve under real faults: kill -9
# mid-calibration replays the write-ahead journal to a byte-identical
# predictor, torn journal tails are trimmed on boot, corrupt reloads
# under prediction load answer 422 with zero 5xx and an unchanged
# generation, and injected handler panics degrade then heal the daemon
# (scripts/chaos-serve.sh; CEER_SKIP_CHAOS_SERVE=1 skips).
if [[ "${CEER_SKIP_CHAOS_SERVE:-}" != "1" ]]; then
    ./scripts/chaos-serve.sh >/dev/null
fi

echo "== serving-path bench regression gate"
# A moderate-depth bench run (enough iterations to average out timer
# noise) written to a scratch file and gated against the committed
# BENCH_predict.json: >20% ns/op or any allocs/op regression fails
# (see scripts/bench.sh).
BENCH_COUNT=2 BENCH_TIME=500x BENCH_OUT="$(mktemp)" ./scripts/bench.sh >/dev/null

echo "== serve daemon bench regression gate"
# The daemon's hot-path benches gated against the committed
# BENCH_serve.json. Only the two zero-alloc handler benches gate here
# (the loadgen benches measure wall-clock percentiles and are recorded,
# not gated, by `make bench-serve`). Any allocs/op above the committed
# baseline of 0 fails — the zero-allocation contract of DESIGN.md §13.
BENCH_COUNT=2 BENCH_TIME=500x BENCH_PKG=./internal/serve \
    BENCH_REGEX='ServePredict$|ServeRecommend$|ServeEncodePredict$' \
    BENCH_BASELINE=BENCH_serve.json BENCH_OUT="$(mktemp)" \
    ./scripts/bench.sh >/dev/null

echo "== serve daemon smoke"
# Boots `ceer serve` on an ephemeral port, hits all five endpoints,
# byte-compares the daemon's /v1/predict body against `ceer predict
# -json`, hot-reloads, and drains (scripts/serve-smoke.sh).
./scripts/serve-smoke.sh >/dev/null

echo "check: OK"
