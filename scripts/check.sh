#!/usr/bin/env bash
# Tier-1+ verification gate (see README "Verification"): vet, build,
# the full test suite, and a race-detector pass over the packages that
# exercise the parallel measurement campaign.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (parallel campaign paths)"
go test -race ./internal/sim ./internal/ceer ./internal/experiments

echo "check: OK"
