package ceer_test

import (
	"fmt"

	"ceer"
)

// ExampleConfig shows configuration construction and pricing.
func ExampleConfig() {
	cfg, _ := ceer.Config("P3", 3)                   // example code elides error handling for brevity
	hourly, _ := ceer.HourlyCost(cfg, ceer.OnDemand) // example code elides error handling for brevity
	fmt.Printf("%s = %s at $%.2f/hr\n", cfg, ceer.InstanceName(cfg), hourly)
	// Output: 3xP3 = p3.8xlarge (3 of 4 GPUs) at $9.18/hr
}

// ExampleAllConfigs enumerates the candidate set the recommender scans.
func ExampleAllConfigs() {
	cfgs := ceer.AllConfigs(2)
	fmt.Println(len(cfgs), "candidates, first:", cfgs[0])
	// Output: 8 candidates, first: 1xG3
}

// ExampleBuildModel shows zoo construction and graph metadata.
func ExampleBuildModel() {
	g, _ := ceer.BuildModel("resnet-50", 32) // example code elides error handling for brevity
	fmt.Printf("%s: %.1fM params, batch %d\n", g.Name, float64(g.Params)/1e6, g.BatchSize)
	// Output: resnet-50: 25.5M params, batch 32
}

// ExampleNewGraphBuilder defines a custom CNN and inspects it.
func ExampleNewGraphBuilder() {
	b := ceer.NewGraphBuilder("tiny", 16)
	x := b.Input(32, 32, 3)
	x = b.ConvSq(x, 8, 3, 1, ceer.SamePadding)
	x = b.ReLU(x)
	x = b.Flatten(x)
	x = b.Dense(x, 10)
	b.SoftmaxLoss(x)
	g, _ := b.Finish() // example code elides error handling for brevity
	fmt.Printf("%d params, %.2f GB training footprint\n",
		g.Params, ceer.EstimateMemoryGB(g))
	// Output: 82146 params, 0.00 GB training footprint
}

// ExampleNewDataset shows the iteration arithmetic of Eq. (2).
func ExampleNewDataset() {
	ds := ceer.NewDataset("mydata", 64000)
	fmt.Println("iterations at batch 32 on 2 GPUs:", ds.Iterations(2, 32))
	// Output: iterations at batch 32 on 2 GPUs: 1000
}
