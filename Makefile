GO ?= go

.PHONY: build test bench bench-predict race lint chaos check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Serving-path benches only; writes BENCH_predict.json (see
# scripts/bench.sh for BENCH_COUNT/BENCH_TIME/BENCH_OUT overrides).
bench-predict:
	./scripts/bench.sh

# Race-detector pass over the packages exercising the parallel
# measurement campaign (internal/par is covered transitively and has
# its own -race-sensitive tests via `make check`).
race:
	$(GO) test -race ./internal/par ./internal/sim ./internal/ceer ./internal/experiments

# The ceer-lint static-analysis suite (internal/lint): device
# genericity, determinism, context threading, error hygiene, float
# comparisons.
lint:
	$(GO) run ./cmd/ceer-lint

# Chaos gate: train twice under the canned fault spec
# (scripts/chaos-spec.json) at different worker counts and byte-diff
# the resulting model files (scripts/chaos.sh).
chaos:
	./scripts/chaos.sh

# The tier-1+ gate: gofmt + vet + build + full tests + module-wide
# race pass + ceer-lint + chaos determinism + bench smoke
# (scripts/check.sh).
check:
	./scripts/check.sh
