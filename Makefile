GO ?= go

.PHONY: build test bench bench-predict bench-serve serve-smoke race lint lint-escape chaos chaos-serve check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Serving-path benches only; writes BENCH_predict.json (see
# scripts/bench.sh for BENCH_COUNT/BENCH_TIME/BENCH_OUT overrides).
bench-predict:
	./scripts/bench.sh

# Serve-daemon benches: the zero-alloc handler paths plus the
# deterministic load-generator runs (closed and open loop, recording
# p50/p99/p999 latency and req/s); regenerates BENCH_serve.json in
# place (the in-place run skips the gate — `make check` gates against
# the committed file).
bench-serve:
	BENCH_PKG=./internal/serve BENCH_REGEX=Serve \
	    BENCH_OUT=BENCH_serve.json BENCH_BASELINE=BENCH_serve.json \
	    ./scripts/bench.sh

# End-to-end daemon smoke: ephemeral port, all five endpoints, CLI
# byte-equivalence, hot reload, graceful drain (scripts/serve-smoke.sh).
serve-smoke:
	./scripts/serve-smoke.sh

# Race-detector pass over the packages exercising the parallel
# measurement campaign (internal/par is covered transitively and has
# its own -race-sensitive tests via `make check`).
race:
	$(GO) test -race ./internal/par ./internal/sim ./internal/ceer ./internal/experiments

# The ceer-lint static-analysis suite (internal/lint): device
# genericity, determinism, context threading, error hygiene, float
# comparisons, and the hot-path proofs (allocfree, atomics, hotpath,
# poolpair).
lint:
	$(GO) run ./cmd/ceer-lint

# Compiler escape-analysis cross-check of the hot-path allocation
# proof: go build -gcflags=-m piped through ceer-lint -escape-log
# (scripts/lint-escape.sh; CEER_SKIP_ESCAPE=1 skips).
lint-escape:
	./scripts/lint-escape.sh

# Chaos gate: train twice under the canned fault spec
# (scripts/chaos-spec.json) at different worker counts and byte-diff
# the resulting model files (scripts/chaos.sh).
chaos:
	./scripts/chaos.sh

# Live-daemon chaos suite: a chaosserve-tagged daemon survives kill -9
# mid-calibration with byte-identical journal replay, boots over torn
# journals, rejects corrupt reloads under load with zero 5xx, and
# degrades/heals through injected panics (scripts/chaos-serve.sh).
chaos-serve:
	./scripts/chaos-serve.sh

# The tier-1+ gate: gofmt + vet + build + full tests + module-wide
# race pass + ceer-lint + escape cross-check + chaos determinism +
# bench smoke + serve bench gate + serve daemon smoke
# (scripts/check.sh).
check:
	./scripts/check.sh
