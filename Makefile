GO ?= go

.PHONY: build test bench bench-predict race check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Serving-path benches only; writes BENCH_predict.json (see
# scripts/bench.sh for BENCH_COUNT/BENCH_TIME/BENCH_OUT overrides).
bench-predict:
	./scripts/bench.sh

# Race-detector pass over the packages exercising the parallel
# measurement campaign (internal/par is covered transitively and has
# its own -race-sensitive tests via `make check`).
race:
	$(GO) test -race ./internal/par ./internal/sim ./internal/ceer ./internal/experiments

# The tier-1+ gate: vet + build + full tests + race pass.
check:
	./scripts/check.sh
